#include "transport/receive_buffer.h"

#include <algorithm>

#include "telemetry/metrics.h"

namespace livenet::transport {

using media::RtpPacketPtr;
using media::Seq;
using media::StreamId;

namespace {
/// Drained voids kept per flow for relayed NACK-void answers. The
/// window only needs to cover a few NACK round trips of seqs.
constexpr std::size_t kVoidHistoryCap = 1024;
}  // namespace

ReceiveBuffer::ReceiveBuffer(sim::EventLoop* loop, DeliverFn deliver,
                             GapFn gap, NackFn nack, const Config& cfg)
    : loop_(loop), deliver_(std::move(deliver)), gap_(std::move(gap)),
      nack_(std::move(nack)), cfg_(cfg) {}

ReceiveBuffer::~ReceiveBuffer() {
  if (scan_timer_ != sim::kInvalidEvent) loop_->cancel(scan_timer_);
}

void ReceiveBuffer::on_packet(const RtpPacketPtr& pkt) {
  ++received_since_fb_;
  auto& st = streams_[flow_key(pkt->stream_id(), pkt->is_audio())];
  if (!st.started) {
    // First packet of this stream from this upstream: sync to it.
    st.started = true;
    st.next_expected = pkt->seq;
  }
  if (pkt->seq < st.next_expected) {
    ++duplicates_;
    return;
  }
  if (st.buffered.count(pkt->seq) != 0) {
    ++duplicates_;
    return;
  }

  if (pkt->prev_link_seq != 0 && pkt->seq > st.next_expected &&
      pkt->seq > pkt->prev_link_seq &&
      pkt->seq - pkt->prev_link_seq <= cfg_.max_buffered) {
    // The sender vouches that (prev_link_seq, seq) was filtered out on
    // purpose: record the seqs as voids, not holes, and cancel any hole
    // already marked there by an out-of-order arrival.
    for (Seq s = std::max(st.next_expected, pkt->prev_link_seq + 1);
         s < pkt->seq; ++s) {
      if (st.buffered.count(s) != 0) continue;
      if (st.missing.erase(s) != 0 && holes_since_fb_ > 0) --holes_since_fb_;
      st.voids.insert(s);
    }
  }
  if (pkt->seq > st.next_expected) {
    // Mark newly discovered holes.
    const Seq scan_from =
        st.buffered.empty() ? st.next_expected
                            : std::max(st.next_expected,
                                       st.buffered.rbegin()->first + 1);
    for (Seq s = scan_from; s < pkt->seq; ++s) {
      if (st.buffered.count(s) == 0 && st.missing.count(s) == 0 &&
          st.voids.count(s) == 0) {
        st.missing.emplace(s, MissInfo{loop_->now(), kNever, 0});
        ++holes_since_fb_;
      }
    }
  }
  // A recovered packet (RTX or FEC reconstruction) filling a tracked
  // hole implicitly cancels any in-flight re-request for that seq (the
  // hole record goes away), and its hole age is the recovery latency.
  const auto miss_it = st.missing.find(pkt->seq);
  if (miss_it != st.missing.end()) {
    if (cfg_.telemetry && (pkt->is_rtx || pkt->fec_recovered)) {
      const double ms =
          static_cast<double>(loop_->now() - miss_it->second.first_missed) /
          static_cast<double>(kMs);
      const auto& h = telemetry::handles();
      h.recovery_ms->observe(ms);
      if (pkt->fec_recovered) {
        h.recovery_fec_ms->observe(ms);
      } else {
        h.recovery_rtx_ms->observe(ms);
      }
    }
    st.missing.erase(miss_it);
  }
  st.buffered.emplace(pkt->seq, pkt);
  drain_in_order(st);

  // Bound the out-of-order buffer: if it overflows, force-skip to its
  // start (treat the unrecovered range as a gap).
  if (st.buffered.size() > cfg_.max_buffered) {
    const Seq first_buffered = st.buffered.begin()->first;
    for (Seq s = st.next_expected; s < first_buffered; ++s) {
      st.missing.erase(s);
    }
    st.voids.erase(st.voids.begin(), st.voids.lower_bound(first_buffered));
    st.next_expected = first_buffered;
    ++gaps_;
    gap_(pkt->stream_id());
    drain_in_order(st);
  }

  if (scan_timer_ == sim::kInvalidEvent) {
    scan_timer_ = loop_->schedule_after(cfg_.nack_interval, [this] {
      scan_timer_ = sim::kInvalidEvent;
      scan();
    });
  }
}

void ReceiveBuffer::drain_in_order(StreamState& st) {
  for (;;) {
    const auto it = st.buffered.find(st.next_expected);
    if (it != st.buffered.end()) {
      deliver_(it->second);
      ++delivered_;
      st.buffered.erase(it);
      ++st.next_expected;
      continue;
    }
    // A voided seq was filtered upstream on purpose: step over it as if
    // delivered — no gap, no NACK. Remember it (bounded) so a relay can
    // still vouch for the void if a downstream node NACKs the seq.
    if (!st.voids.empty() && st.voids.erase(st.next_expected) != 0) {
      st.void_history.insert(st.next_expected);
      while (st.void_history.size() > kVoidHistoryCap) {
        st.void_history.erase(st.void_history.begin());
      }
      ++st.next_expected;
      continue;
    }
    break;
  }
}

void ReceiveBuffer::scan() {
  const Time now = loop_->now();
  // Re-NACK holdoff: a requested retransmission needs a full upstream
  // round trip (plus pacer slack) to arrive. Re-requesting every
  // nack_interval — the old behaviour — duplicated every RTX on links
  // whose RTT exceeds the scan period.
  const Duration holdoff =
      std::max(cfg_.nack_interval, rtt_hint_ + cfg_.rtx_holdoff_margin);
  bool any_pending = false;
  for (auto& [key, st] : streams_) {
    const media::StreamId stream = key / 2;
    const bool audio = (key & 1) != 0;
    std::vector<Seq> to_nack;
    std::vector<Seq> to_abandon;
    for (auto& [seq, info] : st.missing) {
      if (now - info.first_missed >= cfg_.giveup_after ||
          info.nacks >= cfg_.max_nacks_per_seq) {
        to_abandon.push_back(seq);
        continue;
      }
      if (info.last_nack == kNever || now - info.last_nack >= holdoff) {
        to_nack.push_back(seq);
        info.last_nack = now;
        ++info.nacks;
      }
    }
    if (!to_nack.empty()) {
      ++nacks_sent_;
      nack_(stream, audio, to_nack);
    }
    if (!to_abandon.empty()) {
      // Skip over abandoned holes: advance next_expected past each
      // abandoned seq when it is the blocking one.
      for (Seq s : to_abandon) st.missing.erase(s);
      bool skipped = false;
      while (!st.missing.empty() || !st.buffered.empty()) {
        if (st.buffered.count(st.next_expected) != 0 ||
            st.voids.count(st.next_expected) != 0) {
          drain_in_order(st);
          continue;
        }
        if (st.missing.count(st.next_expected) != 0) break;  // still hoping
        // next_expected is neither buffered nor tracked-missing: it was
        // abandoned; skip it.
        if (st.buffered.empty()) break;
        ++st.next_expected;
        skipped = true;
      }
      if (skipped) {
        ++gaps_;
        gap_(stream);
      }
    }
    if (!st.missing.empty()) any_pending = true;
  }
  if (any_pending && scan_timer_ == sim::kInvalidEvent) {
    scan_timer_ = loop_->schedule_after(cfg_.nack_interval, [this] {
      scan_timer_ = sim::kInvalidEvent;
      scan();
    });
  }
}

bool ReceiveBuffer::was_voided(StreamId stream, bool audio, Seq seq) const {
  const auto it = streams_.find(flow_key(stream, audio));
  if (it == streams_.end()) return false;
  const StreamState& st = it->second;
  return st.voids.count(seq) != 0 || st.void_history.count(seq) != 0;
}

void ReceiveBuffer::void_seqs(StreamId stream, bool audio,
                              const std::vector<Seq>& seqs) {
  const auto it = streams_.find(flow_key(stream, audio));
  if (it == streams_.end()) return;
  StreamState& st = it->second;
  if (!st.started) return;
  for (const Seq s : seqs) {
    if (s < st.next_expected || st.buffered.count(s) != 0) continue;
    if (st.missing.erase(s) != 0 && holes_since_fb_ > 0) --holes_since_fb_;
    st.voids.insert(s);
  }
  drain_in_order(st);
}

std::vector<RtpPacketPtr> ReceiveBuffer::buffered_packets(
    StreamId stream) const {
  std::vector<RtpPacketPtr> out;
  for (const bool audio : {false, true}) {
    const auto it = streams_.find(flow_key(stream, audio));
    if (it == streams_.end()) continue;
    for (const auto& [seq, pkt] : it->second.buffered) {
      out.push_back(pkt);
    }
  }
  return out;
}

bool ReceiveBuffer::would_accept(StreamId stream, bool audio,
                                 Seq seq) const {
  const auto it = streams_.find(flow_key(stream, audio));
  if (it == streams_.end()) return true;
  const StreamState& st = it->second;
  if (!st.started) return true;
  if (seq < st.next_expected) return false;
  // A voided seq was layer-filtered upstream: an out-of-band recovery
  // injecting it would resurrect the filtered layer.
  if (st.voids.count(seq) != 0) return false;
  return st.buffered.count(seq) == 0;
}

std::vector<Seq> ReceiveBuffer::missing_subset(
    StreamId stream, bool audio, const std::vector<Seq>& seqs) const {
  std::vector<Seq> out;
  const auto it = streams_.find(flow_key(stream, audio));
  if (it == streams_.end()) return out;
  for (const Seq s : seqs) {
    if (it->second.missing.count(s) != 0) out.push_back(s);
  }
  return out;
}

void ReceiveBuffer::forget_stream(StreamId stream) {
  streams_.erase(flow_key(stream, false));
  streams_.erase(flow_key(stream, true));
}

double ReceiveBuffer::take_loss_fraction() {
  const std::uint64_t expected = received_since_fb_ + holes_since_fb_;
  const double frac =
      expected > 0
          ? static_cast<double>(holes_since_fb_) / static_cast<double>(expected)
          : 0.0;
  holes_since_fb_ = 0;
  received_since_fb_ = 0;
  return frac;
}

}  // namespace livenet::transport
