#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "media/rtp.h"
#include "sim/event_loop.h"
#include "util/time.h"

// Slow-path RTP receive buffer with hole detection (paper §5.1): "each
// node examines holes in the sequence numbers of the received RTP
// packets every 50 ms and sends the sequence numbers of the lost
// packets to the upstream node in RTCP NACK messages."
//
// One ReceiveBuffer instance handles all streams arriving from one
// upstream neighbor. It delivers packets to the framing layer in seq
// order, emits NACK lists on a 50 ms scan, and gives up on holes older
// than a deadline (delivering a gap notification so framing can discard
// the damaged frame).
namespace livenet::transport {

class ReceiveBuffer {
 public:
  struct Config {
    Duration nack_interval = 50 * kMs;  ///< hole scan period
    Duration giveup_after = 500 * kMs;  ///< abandon recovery beyond this
    int max_nacks_per_seq = 8;          ///< retry bound per missing seq
    std::size_t max_buffered = 4096;    ///< out-of-order packets per stream
    /// Extra slack on top of the upstream RTT before a NACKed seq may be
    /// re-NACKed (see set_rtt_hint): covers pacer queueing on the
    /// retransmission path.
    Duration rtx_holdoff_margin = 10 * kMs;
    /// Record hole-fill recovery latencies into the metrics registry.
    bool telemetry = false;
  };

  /// Ordered delivery upcall (packet is the original or a recovered
  /// retransmission). Ordering is per flow: audio and video of a stream
  /// are independent RTP flows with their own sequence spaces.
  using DeliverFn = std::function<void(const media::RtpPacketPtr&)>;
  /// Unrecoverable hole: the (video or audio) flow skipped ahead.
  using GapFn = std::function<void(media::StreamId)>;
  /// NACK transmission upcall: send `missing` of the given flow
  /// (audio=true/false) to the upstream node.
  using NackFn = std::function<void(media::StreamId, bool,
                                    const std::vector<media::Seq>&)>;

  ReceiveBuffer(sim::EventLoop* loop, DeliverFn deliver, GapFn gap,
                NackFn nack)
      : ReceiveBuffer(loop, std::move(deliver), std::move(gap),
                      std::move(nack), Config()) {}
  ReceiveBuffer(sim::EventLoop* loop, DeliverFn deliver, GapFn gap,
                NackFn nack, const Config& cfg);
  ~ReceiveBuffer();
  ReceiveBuffer(const ReceiveBuffer&) = delete;
  ReceiveBuffer& operator=(const ReceiveBuffer&) = delete;

  void on_packet(const media::RtpPacketPtr& pkt);

  /// Upstream-link RTT hint. A NACKed seq is not re-NACKed until the
  /// requested retransmission had a full round trip (plus
  /// rtx_holdoff_margin) to arrive. Without this, any link whose RTT
  /// exceeds nack_interval re-requested every scan while the RTX was
  /// still in flight — duplicate retransmissions of the same seq.
  void set_rtt_hint(Duration rtt) { rtt_hint_ = rtt < 0 ? 0 : rtt; }

  /// Would this seq be new to the given flow (not already delivered or
  /// buffered)? Used to gate out-of-band recovery injections (FEC
  /// reconstruction) so they never regress to duplicates.
  bool would_accept(media::StreamId stream, bool audio, media::Seq seq) const;

  /// Supplier-vouched voids (a NackVoid answer): the listed seqs were
  /// layer-filtered upstream on purpose and will never be retransmitted.
  /// Converts tracked holes into voids and drains past them — the
  /// counterpart of the in-band prev_link_seq voucher for the case where
  /// the voucher itself was lost and the hole already triggered a NACK.
  void void_seqs(media::StreamId stream, bool audio,
                 const std::vector<media::Seq>& seqs);

  /// Was this seq ever recorded as a void on this flow (pending or
  /// already drained past)? Lets a relay answer a downstream NACK for a
  /// seq that was filtered before it ever reached this node.
  bool was_voided(media::StreamId stream, bool audio, media::Seq seq) const;

  /// The subset of `seqs` still tracked as missing on this flow —
  /// the staggered multi-supplier fallback re-checks before escalating
  /// a NACK to the next supplier.
  std::vector<media::Seq> missing_subset(
      media::StreamId stream, bool audio,
      const std::vector<media::Seq>& seqs) const;

  /// Drops all state for a stream.
  void forget_stream(media::StreamId stream);

  /// Packets buffered beyond the in-order head (both flows, seq order):
  /// content that has arrived but is blocked behind a recovery hole.
  /// Used to shrink the cache-burst seam when serving new subscribers.
  std::vector<media::RtpPacketPtr> buffered_packets(
      media::StreamId stream) const;

  std::uint64_t packets_delivered() const { return delivered_; }
  std::uint64_t duplicates() const { return duplicates_; }
  std::uint64_t gaps() const { return gaps_; }
  std::uint64_t nacks_sent() const { return nacks_sent_; }

  /// Loss fraction observed since the last call (holes first detected /
  /// packets expected); used for CC feedback.
  double take_loss_fraction();

 private:
  struct MissInfo {
    Time first_missed = 0;
    Time last_nack = kNever;
    int nacks = 0;
  };
  struct StreamState {
    bool started = false;
    media::Seq next_expected = 0;
    std::map<media::Seq, media::RtpPacketPtr> buffered;
    std::map<media::Seq, MissInfo> missing;
    /// Seqs the upstream declared intentionally absent on this link
    /// (layer-filtered; see RtpPacket::prev_link_seq). Never NACKed,
    /// never a gap: drain steps over them as if delivered.
    std::set<media::Seq> voids;
    /// Voids the drain already stepped over, kept (bounded) so a
    /// downstream NACK for a seq this node never had can still be
    /// answered as a void instead of left to time out.
    std::set<media::Seq> void_history;
  };

  void scan();
  void drain_in_order(StreamState& st);

  /// Flow key: stream id + media kind (audio/video are separate flows).
  static std::uint64_t flow_key(media::StreamId s, bool audio) {
    return s * 2 + (audio ? 1 : 0);
  }

  sim::EventLoop* loop_;
  DeliverFn deliver_;
  GapFn gap_;
  NackFn nack_;
  Config cfg_;
  Duration rtt_hint_ = 0;
  std::unordered_map<std::uint64_t, StreamState> streams_;
  sim::EventId scan_timer_ = sim::kInvalidEvent;
  std::uint64_t delivered_ = 0;
  std::uint64_t duplicates_ = 0;
  std::uint64_t gaps_ = 0;
  std::uint64_t nacks_sent_ = 0;
  std::uint64_t holes_since_fb_ = 0;
  std::uint64_t received_since_fb_ = 0;
};

}  // namespace livenet::transport
