#include "transport/send_history.h"

namespace livenet::transport {

void SendHistory::record(const media::RtpPacketPtr& pkt, Time now) {
  prune(now);
  const Key k{flow_id(pkt->stream_id(), pkt->is_audio()), pkt->seq};
  by_key_[k] = {pkt, now};
  fifo_.emplace_back(now, k);
}

media::RtpPacketPtr SendHistory::lookup(media::StreamId stream, bool audio,
                                        media::Seq seq, Time now) {
  prune(now);
  const auto it = by_key_.find(Key{flow_id(stream, audio), seq});
  if (it == by_key_.end()) return nullptr;
  return it->second.first;
}

void SendHistory::forget_stream(media::StreamId stream) {
  // Lazy: entries are dropped on prune; here we only remove the map
  // entries so lookups fail immediately.
  for (auto it = by_key_.begin(); it != by_key_.end();) {
    if (it->first.stream / 2 == stream) {
      it = by_key_.erase(it);
    } else {
      ++it;
    }
  }
}

void SendHistory::prune(Time now) {
  // now < max_age: no record can be stale yet, and the subtraction
  // would wrap under an unsigned Time (same guard as RateMeter::evict).
  const Time cutoff = now >= cfg_.max_age ? now - cfg_.max_age : 0;
  while (!fifo_.empty() && (fifo_.front().first < cutoff ||
                            fifo_.size() > cfg_.max_packets)) {
    const auto& [t, k] = fifo_.front();
    const auto it = by_key_.find(k);
    // Only erase if this FIFO entry is the latest record for the key
    // (a re-recorded packet leaves a stale FIFO entry behind).
    if (it != by_key_.end() && it->second.second == t) by_key_.erase(it);
    fifo_.pop_front();
  }
}

}  // namespace livenet::transport
