#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>

#include "media/rtp.h"
#include "util/time.h"

// Bounded history of recently sent packets, used by the slow path's
// loss-recovery module to answer NACKs from the downstream node
// (paper §5.1: "The lost packets will then be retransmitted by the loss
// recovery module in the upstream node").
namespace livenet::transport {

class SendHistory {
 public:
  struct Config {
    Duration max_age = 2 * kSec;        ///< drop entries older than this
    std::size_t max_packets = 100000;   ///< hard bound on memory
  };

  SendHistory() : SendHistory(Config()) {}
  explicit SendHistory(const Config& cfg) : cfg_(cfg) {}

  /// Records a sent packet (keyed by stream + flow kind + seq).
  void record(const media::RtpPacketPtr& pkt, Time now);

  /// Looks up a packet for retransmission; nullptr if expired/unknown.
  media::RtpPacketPtr lookup(media::StreamId stream, bool audio,
                             media::Seq seq, Time now);

  /// Drops all state for a stream (unsubscribe / stream end).
  void forget_stream(media::StreamId stream);

  std::size_t size() const { return by_key_.size(); }

 private:
  static std::uint64_t key_hash(media::StreamId stream, media::Seq seq) {
    // Streams and seqs are both dense counters; mix them.
    return stream * 0x9E3779B97F4A7C15ull ^ seq;
  }

  struct Key {
    media::StreamId stream;  ///< stream*2 + audio-flag (flow id)
    media::Seq seq;
    bool operator==(const Key&) const = default;
  };
  struct KeyHasher {
    std::size_t operator()(const Key& k) const {
      return key_hash(k.stream, k.seq);
    }
  };
  static media::StreamId flow_id(media::StreamId stream, bool audio) {
    return stream * 2 + (audio ? 1 : 0);
  }

  void prune(Time now);

  Config cfg_;
  std::unordered_map<Key, std::pair<media::RtpPacketPtr, Time>, KeyHasher>
      by_key_;
  std::deque<std::pair<Time, Key>> fifo_;
};

}  // namespace livenet::transport
