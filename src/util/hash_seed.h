#pragma once

#include <cstdlib>
#include <functional>

// Process-wide hash-seed perturbation for the node-local hash maps
// whose iteration order must never leak into observable behaviour.
//
// libstdc++'s std::hash is deterministic, so unordered_map iteration
// order is a pure function of the insertion sequence — which means an
// accidental order dependence reproduces identically on every run and
// golden tests cannot catch it. Maps keyed with SeededHash instead mix
// in a process-wide seed: CI re-runs the golden scenario under a
// different seed (LIVENET_HASH_SEED, or set_hash_seed() from a test)
// and any order leak shows up as a golden diff.
//
// Seed 0 (the default) degrades to plain std::hash, so default-seeded
// runs stay bit-identical with the pre-seeding tree.
namespace livenet {

namespace detail {
inline std::size_t& hash_seed_slot() {
  static std::size_t seed = [] {
    const char* env = std::getenv("LIVENET_HASH_SEED");
    return env != nullptr
               ? static_cast<std::size_t>(std::strtoull(env, nullptr, 0))
               : std::size_t{0};
  }();
  return seed;
}
}  // namespace detail

inline std::size_t hash_seed() { return detail::hash_seed_slot(); }

/// Test hook: override the seed for maps constructed afterwards.
/// (Existing maps keep the bucket layout they already built; tests set
/// the seed before constructing the system under test.)
inline void set_hash_seed(std::size_t seed) {
  detail::hash_seed_slot() = seed;
}

/// std::hash with the process seed mixed in (splitmix64-style odd
/// multiplier so a small seed still moves keys across buckets).
template <class K>
struct SeededHash {
  std::size_t operator()(const K& k) const {
    const std::size_t h = std::hash<K>{}(k);
    const std::size_t s = hash_seed();
    if (s == 0) return h;  // bit-compatible with std::hash by default
    std::size_t x = h ^ (s * 0x9E3779B97F4A7C15ull);
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ull;
    x ^= x >> 27;
    return x;
  }
};

}  // namespace livenet
