#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

#include "util/pool.h"

// Small-buffer-optimised move-only callable for the event loop.
//
// `std::function` heap-allocates any capture larger than two pointers
// and requires copyability; the event loop's deliveries capture a node
// pointer plus a refcounted packet (24 B) or a fan-out snapshot
// (~80 B). InlineFunction stores captures up to kInlineBytes in place
// — no allocation at all on the common path — and spills larger ones
// into a FreeListArena bucket, so even the spill never touches the
// system allocator in steady state.
//
// Move-only on purpose: event callbacks own their captures (e.g. the
// last reference to a packet) and are invoked exactly once; copyability
// would force shared ownership semantics the loop does not need.
namespace livenet::util {

class InlineFunction {
 public:
  static constexpr std::size_t kInlineBytes = 48;

  InlineFunction() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InlineFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &inline_ops<Fn>;
    } else {
      heap_ = pool_new<Fn>(std::forward<F>(f));
      ops_ = &spilled_ops<Fn>;
    }
  }

  InlineFunction(InlineFunction&& o) noexcept : ops_(o.ops_) {
    if (ops_ != nullptr) ops_->relocate(&o, this);
    o.ops_ = nullptr;
  }

  InlineFunction& operator=(InlineFunction&& o) noexcept {
    if (this != &o) {
      reset();
      ops_ = o.ops_;
      if (ops_ != nullptr) ops_->relocate(&o, this);
      o.ops_ = nullptr;
    }
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { reset(); }

  /// Destroys the stored callable (releasing anything it captured).
  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(this);
      ops_ = nullptr;
    }
  }

  explicit operator bool() const { return ops_ != nullptr; }

  void operator()() { ops_->invoke(this); }

 private:
  struct Ops {
    void (*invoke)(InlineFunction*);
    void (*relocate)(InlineFunction* from, InlineFunction* to) noexcept;
    void (*destroy)(InlineFunction*) noexcept;
  };

  union {
    alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
    void* heap_;
  };
  const Ops* ops_ = nullptr;

  template <typename Fn>
  static Fn* inline_target(InlineFunction* self) {
    return std::launder(reinterpret_cast<Fn*>(self->buf_));
  }

  template <typename Fn>
  static constexpr Ops inline_ops = {
      [](InlineFunction* self) { (*inline_target<Fn>(self))(); },
      [](InlineFunction* from, InlineFunction* to) noexcept {
        ::new (static_cast<void*>(to->buf_))
            Fn(std::move(*inline_target<Fn>(from)));
        inline_target<Fn>(from)->~Fn();
      },
      [](InlineFunction* self) noexcept { inline_target<Fn>(self)->~Fn(); },
  };

  template <typename Fn>
  static constexpr Ops spilled_ops = {
      [](InlineFunction* self) { (*static_cast<Fn*>(self->heap_))(); },
      [](InlineFunction* from, InlineFunction* to) noexcept {
        to->heap_ = from->heap_;
      },
      [](InlineFunction* self) noexcept {
        pool_delete(static_cast<Fn*>(self->heap_));
      },
  };
};

}  // namespace livenet::util
