#include "util/logging.h"

#include <array>
#include <cstdio>

namespace livenet {

namespace {
constexpr std::array<const char*, 6> kNames = {"TRACE", "DEBUG", "INFO",
                                               "WARN",  "ERROR", "OFF"};
}  // namespace

void Logger::write(LogLevel lvl, const std::string& msg) {
  if (lvl < level_) return;
  std::fprintf(stderr, "[%10.3fms %s] %s\n", to_ms(now_),
               kNames[static_cast<int>(lvl)], msg.c_str());
}

}  // namespace livenet
