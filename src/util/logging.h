#pragma once

#include <iostream>
#include <sstream>
#include <string>

#include "util/time.h"

// Minimal leveled logging for the simulator. Logging is compiled in but
// disabled by default (level = Warn) so that hot paths stay quiet; tests
// and examples raise the level when debugging.
namespace livenet {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Global log configuration. Not thread-safe by design: the simulator is
/// single-threaded (a discrete-event loop), and benchmarks set the level
/// once before running.
class Logger {
 public:
  static LogLevel level() { return level_; }
  static void set_level(LogLevel lvl) { level_ = lvl; }

  /// Attaches the current virtual time to log lines (set by EventLoop).
  static void set_now(Time now) { now_ = now; }

  static void write(LogLevel lvl, const std::string& msg);

 private:
  static inline LogLevel level_ = LogLevel::kWarn;
  /// thread_local: every shard thread of a sharded run stamps its own
  /// virtual clock (the level stays global — set once before threads
  /// spawn, read-only while they run).
  static inline thread_local Time now_ = 0;
};

/// Stream-style log statement builder:
///   LOG(kInfo) << "node " << id << " overloaded";
class LogStatement {
 public:
  explicit LogStatement(LogLevel lvl) : lvl_(lvl) {}
  ~LogStatement() { Logger::write(lvl_, ss_.str()); }
  LogStatement(const LogStatement&) = delete;
  LogStatement& operator=(const LogStatement&) = delete;

  template <typename T>
  LogStatement& operator<<(const T& v) {
    ss_ << v;
    return *this;
  }

 private:
  LogLevel lvl_;
  std::ostringstream ss_;
};

}  // namespace livenet

#define LIVENET_LOG(lvl)                              \
  if (::livenet::Logger::level() <= ::livenet::LogLevel::lvl) \
  ::livenet::LogStatement(::livenet::LogLevel::lvl)
