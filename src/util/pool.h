#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <utility>

// Freelist arenas for the simulator's per-packet hot path.
//
// Each simulation thread is single-threaded by design (one EventLoop,
// one virtual clock per shard), so these pools deliberately skip all
// synchronisation: an allocation is a pointer pop, a deallocation a
// pointer push. The freelist head is thread_local, which makes every
// shard of a sharded run (see sim/shard.h) its own arena with zero
// cross-thread contention. Blocks are carved from geometrically-growing
// chunks that are never returned to the OS — the working set of
// in-flight packets/events reaches a steady state within the first
// simulated seconds and the arena stops touching the system allocator
// entirely after that. A block freed on a different thread than the one
// that allocated it simply migrates to the freeing thread's freelist
// (chunks are never unmapped, so the memory stays valid); the sharded
// runtime still keeps object *ownership* single-threaded — only whole,
// sole-owner handoffs cross a shard boundary.
namespace livenet::util {

/// Fixed-size block arena. All users of the same `Size` bucket share
/// one freelist (packets, event nodes, spilled callbacks of equal
/// size), which keeps the hot freelist in cache.
template <std::size_t Size>
class FreeListArena {
 public:
  static void* allocate() {
    if (head_ref() == nullptr) refill();
    Node* n = head_ref();
    head_ref() = n->next;
    return n;
  }

  static void deallocate(void* p) noexcept {
    Node* n = static_cast<Node*>(p);
    n->next = head_ref();
    head_ref() = n;
  }

 private:
  union Node {
    Node* next;
    alignas(std::max_align_t) unsigned char storage[Size];
  };

  static Node*& head_ref() {
    static thread_local Node* head = nullptr;
    return head;
  }

  static void refill() {
    // Geometric growth, capped: start small so micro uses stay cheap,
    // grow fast enough that a 600-node run does O(log n) system allocs.
    static thread_local std::size_t chunk_nodes = 64;
    Node* chunk =
        static_cast<Node*>(::operator new(chunk_nodes * sizeof(Node)));
    for (std::size_t i = 0; i < chunk_nodes; ++i) {
      chunk[i].next = head_ref();
      head_ref() = &chunk[i];
    }
    if (chunk_nodes < 16384) chunk_nodes *= 2;
  }
};

/// Rounds an allocation size up to a pool bucket so types that differ
/// by a few bytes share an arena.
constexpr std::size_t pool_bucket(std::size_t n) {
  std::size_t b = 32;
  while (b < n) b *= 2;
  return b;
}

/// Pool-backed `new` for a single object of type T. Pairs with
/// `pool_delete`.
template <typename T, typename... Args>
T* pool_new(Args&&... args) {
  void* p = FreeListArena<pool_bucket(sizeof(T))>::allocate();
  return ::new (p) T(std::forward<Args>(args)...);
}

template <typename T>
void pool_delete(T* p) noexcept {
  p->~T();
  FreeListArena<pool_bucket(sizeof(T))>::deallocate(p);
}

/// Minimal std::allocator-compatible adapter over FreeListArena, for
/// `std::allocate_shared` and friends when a shared_ptr is still the
/// right ownership tool off the hot path.
template <typename T>
struct PoolAlloc {
  using value_type = T;

  PoolAlloc() = default;
  template <typename U>
  PoolAlloc(const PoolAlloc<U>&) {}

  T* allocate(std::size_t n) {
    if (n != 1) return static_cast<T*>(::operator new(n * sizeof(T)));
    return static_cast<T*>(FreeListArena<pool_bucket(sizeof(T))>::allocate());
  }
  void deallocate(T* p, std::size_t n) noexcept {
    if (n != 1) {
      ::operator delete(p);
      return;
    }
    FreeListArena<pool_bucket(sizeof(T))>::deallocate(p);
  }

  template <typename U>
  bool operator==(const PoolAlloc<U>&) const {
    return true;
  }
};

}  // namespace livenet::util
