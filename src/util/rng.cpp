#include "util/rng.h"

#include <cmath>

namespace livenet {

double Rng::exponential(double mean) {
  // Inverse-CDF sampling; guard against log(0).
  double u = uniform();
  if (u <= 0.0) u = std::numeric_limits<double>::min();
  return -mean * std::log(u);
}

double Rng::normal(double mu, double sigma) {
  // Box-Muller. We deliberately do not cache the second value so that
  // the draw count per call is fixed (simplifies reproducibility
  // reasoning when components interleave draws).
  double u1 = uniform();
  if (u1 <= 0.0) u1 = std::numeric_limits<double>::min();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  return mu + sigma * r * std::cos(theta);
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double Rng::pareto(double x_m, double alpha) {
  double u = uniform();
  if (u <= 0.0) u = std::numeric_limits<double>::min();
  return x_m / std::pow(u, 1.0 / alpha);
}

}  // namespace livenet
