#pragma once

#include <cstdint>
#include <limits>

// Deterministic pseudo-random number generation for the simulator.
//
// Every stochastic component (link loss, workload arrivals, frame sizes,
// ...) draws from an explicitly seeded Rng so that whole experiments are
// reproducible bit-for-bit. We implement xoshiro256** rather than using
// std::mt19937_64 because it is faster, has a tiny state, and its
// behaviour is fixed across standard library implementations.
namespace livenet {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference
/// implementation, re-expressed in C++).
class Rng {
 public:
  /// Seeds the generator. Two generators with the same seed produce the
  /// same sequence; distinct seeds produce decorrelated streams thanks to
  /// the splitmix64 seeding procedure.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // splitmix64 to fill the state: recommended seeding for xoshiro.
    auto next = [&seed]() {
      seed += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      return z ^ (z >> 31);
    };
    for (auto& word : state_) word = next();
  }

  /// Uniform 64-bit draw.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform real in [0, 1).
  double uniform() {
    // 53 bits of mantissa from the top of the draw.
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform real in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(bounded(span));
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) { return uniform() < p; }

  /// Exponentially distributed draw with the given mean (> 0).
  double exponential(double mean);

  /// Standard normal draw (Box-Muller; one value per call).
  double normal(double mu = 0.0, double sigma = 1.0);

  /// Log-normal draw parameterized by the mean/sigma of the underlying
  /// normal distribution.
  double lognormal(double mu, double sigma);

  /// Pareto draw with scale x_m and shape alpha (> 0).
  double pareto(double x_m, double alpha);

  /// Picks an index in [0, n) uniformly. Requires n > 0.
  std::size_t index(std::size_t n) { return static_cast<std::size_t>(bounded(n)); }

  /// Forks a decorrelated child generator (stable given call order).
  Rng fork() { return Rng(next_u64()); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  /// Unbiased bounded draw via rejection (Lemire-style would be faster
  /// but simulation draws are not a bottleneck).
  std::uint64_t bounded(std::uint64_t n) {
    const std::uint64_t threshold = (0 - n) % n;
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % n;
    }
  }

  std::uint64_t state_[4]{};
};

}  // namespace livenet
