#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/logging.h"

namespace livenet {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::merge(const OnlineStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(n_);
  const auto n2 = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double OnlineStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void Samples::sort_if_needed() const {
  if (dirty_) {
    std::sort(values_.begin(), values_.end());
    dirty_ = false;
  }
}

double Samples::mean() const {
  if (values_.empty()) return 0.0;
  double s = 0.0;
  for (double v : values_) s += v;
  return s / static_cast<double>(values_.size());
}

double Samples::min() const {
  sort_if_needed();
  return values_.empty() ? 0.0 : values_.front();
}

double Samples::max() const {
  sort_if_needed();
  return values_.empty() ? 0.0 : values_.back();
}

double Samples::quantile(double q) const {
  if (values_.empty()) return 0.0;
  sort_if_needed();
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(values_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, values_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values_[lo] * (1.0 - frac) + values_[hi] * frac;
}

double Samples::cdf_at(double x) const {
  if (values_.empty()) return 0.0;
  sort_if_needed();
  const auto it = std::upper_bound(values_.begin(), values_.end(), x);
  return static_cast<double>(it - values_.begin()) /
         static_cast<double>(values_.size());
}

std::vector<double> Samples::cdf(const std::vector<double>& points) const {
  std::vector<double> out;
  out.reserve(points.size());
  for (double p : points) out.push_back(cdf_at(p));
  return out;
}

const std::vector<double>& Samples::sorted() const {
  sort_if_needed();
  return values_;
}

BoxStats boxplot(const Samples& s) {
  BoxStats b;
  b.p20 = s.quantile(0.20);
  b.p25 = s.quantile(0.25);
  b.p50 = s.quantile(0.50);
  b.p75 = s.quantile(0.75);
  b.p80 = s.quantile(0.80);
  b.count = s.count();
  return b;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi) {
  // Validate before the width division and the bucket allocation: with
  // buckets == 0 the member-initializer order would divide by zero
  // (and allocate) before the guard ever ran.
  if (buckets == 0 || !(hi > lo)) {
    throw std::invalid_argument("Histogram: requires hi > lo, buckets > 0");
  }
  width_ = (hi - lo) / static_cast<double>(buckets);
  counts_.assign(buckets, 0);
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
  } else if (x >= hi_) {
    ++overflow_;
  } else {
    auto idx = static_cast<std::size_t>((x - lo_) / width_);
    idx = std::min(idx, counts_.size() - 1);  // guard FP edge at hi_
    ++counts_[idx];
  }
}

void Histogram::add_weighted(double x, std::size_t w) {
  total_ += w;
  if (x < lo_) {
    underflow_ += w;
  } else if (x >= hi_) {
    overflow_ += w;
  } else {
    auto idx = static_cast<std::size_t>((x - lo_) / width_);
    idx = std::min(idx, counts_.size() - 1);  // guard FP edge at hi_
    counts_[idx] += w;
  }
}

void Histogram::merge(const Histogram& other) {
  if (other.lo_ != lo_ || other.hi_ != hi_ ||
      other.counts_.size() != counts_.size()) {
    // Differently-shaped histograms have no faithful bucket mapping;
    // refusing beats silently mis-binning.
    LIVENET_LOG(kError) << "Histogram::merge: shape mismatch, ignored";
    return;
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  total_ += other.total_;
}

double Histogram::bucket_lo(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bucket_hi(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i + 1);
}

double Histogram::quantile(double q) const {
  if (total_ == 0) return lo_;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  double cum = static_cast<double>(underflow_);
  if (target <= cum) return lo_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (target <= next && counts_[i] > 0) {
      const double frac = (target - cum) / static_cast<double>(counts_[i]);
      return bucket_lo(i) + frac * width_;
    }
    cum = next;
  }
  return hi_;
}

double welch_t_statistic(const OnlineStats& a, const OnlineStats& b) {
  if (a.count() < 2 || b.count() < 2) return 0.0;
  const double va = a.variance() / static_cast<double>(a.count());
  const double vb = b.variance() / static_cast<double>(b.count());
  const double denom = std::sqrt(va + vb);
  if (denom == 0.0) return 0.0;
  return (a.mean() - b.mean()) / denom;
}

}  // namespace livenet
