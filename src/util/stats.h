#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

// Statistics helpers used by both the simulator (link utilization
// estimates) and the evaluation harness (percentiles, CDFs, boxplots).
namespace livenet {

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
/// O(1) space; suitable for high-rate counters inside the data plane.
class OnlineStats {
 public:
  void add(double x);
  void merge(const OnlineStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  double variance() const;
  double stddev() const;
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }
  double sum() const { return n_ > 0 ? mean_ * static_cast<double>(n_) : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Sample reservoir with exact quantiles. Stores every sample; use for
/// per-session metrics (bounded by session count), not per-packet data.
class Samples {
 public:
  void add(double x) { values_.push_back(x); dirty_ = true; }
  void reserve(std::size_t n) { values_.reserve(n); }

  std::size_t count() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  double mean() const;
  double min() const;
  double max() const;

  /// Exact quantile with linear interpolation; q in [0, 1].
  double quantile(double q) const;
  double median() const { return quantile(0.5); }

  /// Fraction of samples <= x (empirical CDF evaluated at x).
  double cdf_at(double x) const;

  /// Evaluates the empirical CDF at each of the given points.
  std::vector<double> cdf(const std::vector<double>& points) const;

  /// Read access to (sorted) raw values.
  const std::vector<double>& sorted() const;

 private:
  void sort_if_needed() const;

  mutable std::vector<double> values_;
  mutable bool dirty_ = false;
};

/// Boxplot summary matching the paper's Figure 11 convention:
/// 20th, 25th, 50th, 75th and 80th percentiles.
struct BoxStats {
  double p20 = 0, p25 = 0, p50 = 0, p75 = 0, p80 = 0;
  std::size_t count = 0;
};

BoxStats boxplot(const Samples& s);

/// Fixed-width histogram over [lo, hi) with overflow/underflow buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  /// Adds `x` with an integer weight — exactly `w` repeated add(x)
  /// calls, in one bucket increment (cohort fan-out uses this).
  void add_weighted(double x, std::size_t w);
  /// Bucket-wise accumulate of an identically-configured histogram
  /// (same [lo, hi) and bucket count; mismatches are ignored loudly).
  void merge(const Histogram& other);
  std::size_t count() const { return total_; }
  std::size_t bucket_count() const { return counts_.size(); }
  std::size_t bucket(std::size_t i) const { return counts_[i]; }
  double bucket_lo(std::size_t i) const;
  double bucket_hi(std::size_t i) const;
  std::size_t underflow() const { return underflow_; }
  std::size_t overflow() const { return overflow_; }

  /// Approximate quantile from bucket boundaries; q in [0, 1].
  double quantile(double q) const;

 private:
  double lo_, hi_, width_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0, overflow_ = 0, total_ = 0;
};

/// Ratio counter (e.g. 0-stall ratio, fast-startup ratio).
class RatioCounter {
 public:
  void add(bool hit) { ++total_; if (hit) ++hits_; }
  std::size_t total() const { return total_; }
  std::size_t hits() const { return hits_; }
  double ratio() const { return total_ ? static_cast<double>(hits_) / static_cast<double>(total_) : 0.0; }
  double percent() const { return 100.0 * ratio(); }

 private:
  std::size_t hits_ = 0;
  std::size_t total_ = 0;
};

/// Two-sample Welch t-test, used to reproduce the paper's significance
/// claim ("p-values < 0.001"). Returns the t statistic; the caller
/// compares against a critical value (for the huge sample sizes used
/// here, |t| > 3.3 corresponds to p < 0.001).
double welch_t_statistic(const OnlineStats& a, const OnlineStats& b);

}  // namespace livenet
