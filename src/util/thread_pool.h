#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

// Small persistent fork-join worker pool for the control plane's
// deterministic fan-out (Parallel Brain, DESIGN.md). Deliberately
// minimal: one blocking `run(fn)` that invokes fn(worker_index) once
// per worker and returns when every invocation has — no futures, no
// task queue, no stealing. Callers that need determinism partition
// their work by worker index (e.g. a stride over a pre-built work
// list) and merge results in a fixed order after run() returns; the
// pool itself never reorders anything.
//
// The calling thread participates as worker 0, so a pool of size W
// spawns only W-1 threads and `ThreadPool(1)` spawns none at all —
// run() then degenerates to a plain call, which is what keeps the
// single-threaded default exactly as cheap as having no pool.
//
// Threads are parked on a condition variable between run() calls
// (generation-counter handshake), so repeated cycles reuse warm
// threads instead of paying spawn/join each time.
namespace livenet::util {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t workers) {
    const std::size_t spawn = workers > 1 ? workers - 1 : 0;
    threads_.reserve(spawn);
    for (std::size_t i = 0; i < spawn; ++i) {
      threads_.emplace_back([this, i] { worker_loop(i + 1); });
    }
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lk(m_);
      stop_ = true;
    }
    work_cv_.notify_all();
    for (auto& t : threads_) t.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total workers run() fans out to, the calling thread included.
  std::size_t size() const { return threads_.size() + 1; }

  /// Invokes fn(w) for every w in [0, size()) — index 0 on the calling
  /// thread, the rest on the pool threads — and blocks until all have
  /// returned. fn must not throw (a throwing job terminates) and must
  /// not re-enter run() on the same pool.
  void run(const std::function<void(std::size_t)>& fn) {
    if (threads_.empty()) {
      fn(0);
      return;
    }
    {
      std::lock_guard<std::mutex> lk(m_);
      job_ = &fn;
      remaining_ = threads_.size();
      ++generation_;
    }
    work_cv_.notify_all();
    fn(0);
    std::unique_lock<std::mutex> lk(m_);
    done_cv_.wait(lk, [this] { return remaining_ == 0; });
    job_ = nullptr;
  }

 private:
  void worker_loop(std::size_t index) {
    std::uint64_t seen = 0;
    for (;;) {
      const std::function<void(std::size_t)>* job = nullptr;
      {
        std::unique_lock<std::mutex> lk(m_);
        work_cv_.wait(lk, [&] { return stop_ || generation_ != seen; });
        if (stop_) return;
        seen = generation_;
        job = job_;
      }
      (*job)(index);
      {
        std::lock_guard<std::mutex> lk(m_);
        --remaining_;
      }
      done_cv_.notify_one();
    }
  }

  std::vector<std::thread> threads_;
  std::mutex m_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::size_t remaining_ = 0;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
};

}  // namespace livenet::util
