#pragma once

#include <cstdint>

// Virtual-time primitives shared by the whole simulation.
//
// All simulated time is expressed as a signed 64-bit count of
// microseconds since the start of the simulation. A signed type is used
// so that time differences (which may be negative, e.g. inter-arrival
// deltas in the GCC trendline filter) use the same representation.
namespace livenet {

/// A point in virtual time, in microseconds since simulation start.
using Time = std::int64_t;

/// A span of virtual time, in microseconds.
using Duration = std::int64_t;

inline constexpr Duration kUs = 1;
inline constexpr Duration kMs = 1000 * kUs;
inline constexpr Duration kSec = 1000 * kMs;
inline constexpr Duration kMin = 60 * kSec;
inline constexpr Duration kHour = 60 * kMin;
inline constexpr Duration kDay = 24 * kHour;

/// Sentinel for "no time set".
inline constexpr Time kNever = -1;

/// Converts a virtual time to fractional milliseconds (for reporting).
constexpr double to_ms(Duration d) { return static_cast<double>(d) / kMs; }

/// Converts a virtual time to fractional seconds (for reporting).
constexpr double to_sec(Duration d) { return static_cast<double>(d) / kSec; }

}  // namespace livenet
