#include "workload/geo.h"

#include <cmath>

namespace livenet::workload {

GeoModel::GeoModel(const GeoConfig& cfg, Rng rng) : cfg_(cfg), rng_(rng) {
  // Place country centers on a circle plus jitter: guarantees pairwise
  // separation without a rejection loop.
  centers_.reserve(static_cast<std::size_t>(cfg_.countries));
  for (int c = 0; c < cfg_.countries; ++c) {
    const double angle =
        2.0 * 3.14159265358979323846 * static_cast<double>(c) /
        static_cast<double>(cfg_.countries);
    const double r =
        cfg_.country_spread * (1.0 + 0.2 * rng_.uniform(-1.0, 1.0));
    centers_.emplace_back(r * std::cos(angle), r * std::sin(angle));
  }
}

GeoSite GeoModel::sample_site(int country) {
  GeoSite s;
  s.country = country >= 0 && country < cfg_.countries
                  ? country
                  : static_cast<int>(rng_.index(
                        static_cast<std::size_t>(cfg_.countries)));
  const auto& [cx, cy] = centers_[static_cast<std::size_t>(s.country)];
  // Uniform in a disc of the country radius.
  const double ang = rng_.uniform(0.0, 2.0 * 3.14159265358979323846);
  const double rad = cfg_.country_radius * std::sqrt(rng_.uniform());
  s.x = cx + rad * std::cos(ang);
  s.y = cy + rad * std::sin(ang);
  return s;
}

GeoSite GeoModel::center_site(int country) const {
  GeoSite s;
  s.country = country >= 0 && country < cfg_.countries ? country : 0;
  const auto& [cx, cy] = centers_[static_cast<std::size_t>(s.country)];
  s.x = cx;
  s.y = cy;
  return s;
}

Duration GeoModel::one_way_delay(const GeoSite& a, const GeoSite& b) const {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  const double ms = std::sqrt(dx * dx + dy * dy);
  const auto d = static_cast<Duration>(ms * static_cast<double>(kMs));
  return std::max(cfg_.min_one_way, d);
}

}  // namespace livenet::workload
