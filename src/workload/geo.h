#pragma once

#include <vector>

#include "util/rng.h"
#include "util/time.h"

// Geographic model. Substitutes for Alibaba's real PoP footprint (600+
// nodes in 70+ countries): countries are placed on a 2D plane whose
// distances map linearly to one-way propagation delays, so intra-
// national links are fast (a few to tens of ms) and inter-national
// links are slow (up to hundreds of ms) — the property behind the
// paper's Table 2 / Figure 12 intra- vs. inter-national split.
namespace livenet::workload {

struct GeoSite {
  int country = 0;
  double x = 0.0;  ///< plane coordinates; 1 unit == 1 ms one-way delay
  double y = 0.0;
};

struct GeoConfig {
  int countries = 6;
  double country_spread = 45.0;    ///< inter-country scale (ms)
  double country_radius = 9.0;     ///< intra-country scale (ms)
  Duration min_one_way = 2 * kMs;  ///< floor (local loop + routing)
};

class GeoModel {
 public:
  GeoModel(const GeoConfig& cfg, Rng rng);

  /// Samples a site inside the given country (or a uniformly random
  /// country if `country` < 0).
  GeoSite sample_site(int country = -1);

  /// One-way propagation delay between two sites.
  Duration one_way_delay(const GeoSite& a, const GeoSite& b) const;

  /// The exact center of a country (core-PoP placement).
  GeoSite center_site(int country) const;

  int countries() const { return cfg_.countries; }
  const GeoConfig& config() const { return cfg_; }

 private:
  GeoConfig cfg_;
  Rng rng_;
  std::vector<std::pair<double, double>> centers_;
};

}  // namespace livenet::workload
