#include "workload/patterns.h"

#include <cmath>

namespace livenet::workload {

double DiurnalCurve::at_hour(double hour) const {
  // Two-cosine blend: deep trough ~4:30 am, main peak ~9 pm with a
  // small mid-day shoulder — the classic consumer-traffic shape.
  constexpr double kPi = 3.14159265358979323846;
  const double main = 0.5 * (1.0 - std::cos(2.0 * kPi * (hour - 4.5) / 24.0));
  const double evening =
      std::exp(-0.5 * std::pow((hour - 21.0) / 2.5, 2.0)) +
      std::exp(-0.5 * std::pow((hour - 21.0 - 24.0) / 2.5, 2.0));
  const double shape = 0.6 * main + 0.4 * evening;
  return trough_ + (peak_ - trough_) * std::min(1.0, shape);
}

ZipfSampler::ZipfSampler(std::size_t n, double s) {
  cdf_.reserve(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_.push_back(total);
  }
  for (auto& v : cdf_) v /= total;
}

std::size_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.uniform();
  // Binary search the CDF.
  std::size_t lo = 0, hi = cdf_.size();
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo < cdf_.size() ? lo : cdf_.size() - 1;
}

double DemandModel::rate_at(Time t) const {
  double rate = base_ * diurnal_.at(t, day_length_);
  for (const auto& w : windows_) {
    if (w.contains(t)) rate *= w.multiplier;
  }
  return rate;
}

}  // namespace livenet::workload
