#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.h"
#include "util/time.h"

// Load patterns. Substitutes for the Taobao Live production traces: a
// diurnal curve with the evening peak the paper observes (hit ratio and
// loss peak between 8 pm and 11 pm), a Zipf popularity distribution
// over streams, and flash-crowd windows for the Double-12 case study.
namespace livenet::workload {

/// Smooth diurnal multiplier over a (possibly compressed) day.
/// hour 0-24 -> multiplier in [trough, peak], lowest around 4-5 am,
/// highest around 9 pm.
class DiurnalCurve {
 public:
  DiurnalCurve(double trough = 0.25, double peak = 1.0)
      : trough_(trough), peak_(peak) {}

  double at_hour(double hour) const;

  /// Maps virtual time to hour-of-day given a (compressed) day length.
  double hour_of(Time t, Duration day_length) const {
    const double day_pos =
        static_cast<double>(t % day_length) / static_cast<double>(day_length);
    return day_pos * 24.0;
  }
  double at(Time t, Duration day_length) const {
    return at_hour(hour_of(t, day_length));
  }

 private:
  double trough_;
  double peak_;
};

/// Zipf(s) sampler over ranks [0, n): rank 0 is the most popular.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s);

  std::size_t sample(Rng& rng) const;
  std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

/// A time window with a demand multiplier (flash sale / Double 12).
struct FlashWindow {
  Time start = 0;
  Time end = 0;
  double multiplier = 1.0;

  bool contains(Time t) const { return t >= start && t < end; }
};

/// Combined demand model: base rate x diurnal x flash windows.
class DemandModel {
 public:
  DemandModel(double base_rate_per_sec, DiurnalCurve diurnal,
              Duration day_length)
      : base_(base_rate_per_sec), diurnal_(diurnal),
        day_length_(day_length) {}

  void add_flash(const FlashWindow& w) { windows_.push_back(w); }

  double rate_at(Time t) const;
  Duration day_length() const { return day_length_; }
  double hour_of(Time t) const { return diurnal_.hour_of(t, day_length_); }

 private:
  double base_;
  DiurnalCurve diurnal_;
  Duration day_length_;
  std::vector<FlashWindow> windows_;
};

}  // namespace livenet::workload
