#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "livenet/csv.h"
#include "livenet/defaults.h"
#include "livenet/report.h"
#include "telemetry/metrics.h"

// Differential determinism check for batched delivery: the delivery
// quantum is *callback granularity only*. Running the same chaos-laden
// scenario (the golden-file workload: broadcasts, random viewers, link
// flaps, degradations, node crashes, plus a scripted mid-run flap) at
// quantum settings from "one upcall per packet" to "1 ms / 64-packet
// bursts" must produce byte-identical CSV output AND identical metrics
// registry totals — including the reason-coded drop counters and the
// hop-record counts, which a batch-boundary double-count would skew.
namespace livenet {
namespace {

ScenarioResult run_with_batch(std::uint64_t seed, sim::DeliveryBatch batch,
                              double trace_sample) {
  reset_telemetry();  // per-run isolation of the process-wide sinks
  SystemConfig sys_cfg = paper_system_config(seed);
  sys_cfg.countries = 2;
  sys_cfg.nodes_per_country = 3;
  sys_cfg.delivery_batch = batch;
  ScenarioConfig scn;
  scn.duration = 40 * kSec;
  scn.day_length = 20 * kSec;
  scn.broadcasts = 3;
  scn.viewer_rate_peak = 1.0;
  scn.mean_view_time = 10 * kSec;
  scn.seed = seed;
  scn.trace_sample = trace_sample;
  scn.faults.seed = seed + 1;
  scn.faults.link_flaps_per_min = 2.0;
  scn.faults.degrades_per_min = 1.0;
  scn.faults.node_crashes_per_min = 0.5;
  sim::FaultSpec scripted;
  scripted.kind = sim::FaultKind::kLinkFlap;
  scripted.at = 12 * kSec;
  scripted.duration = 2 * kSec;
  scripted.a = 0;
  scripted.b = 1;
  scn.faults.scripted.push_back(scripted);
  LiveNetSystem system(sys_cfg);
  ScenarioRunner runner(system, scn);
  return runner.run();
}

std::string all_csv(const ScenarioResult& r) {
  std::ostringstream os;
  os << "# sessions\n";
  write_sessions_csv(r, os);
  os << "# views\n";
  write_views_csv(r, os);
  os << "# path_requests\n";
  write_path_requests_csv(r, os);
  os << "# timeline\n";
  write_timeline_csv(r, os);
  os << "# faults\n";
  write_faults_csv(r, os);
  return os.str();
}

/// Registry dump minus the brain.recompute_* family (cycle wall time
/// plus its graph-build/solve/install phase split) — the only
/// wall-clock, hence run-to-run nondeterministic, metrics in the
/// registry.
std::string metrics_json_sans_wallclock() {
  std::ostringstream os;
  telemetry::MetricsRegistry::instance().write_json(os);
  std::istringstream in(os.str());
  std::string line;
  std::string out;
  while (std::getline(in, line)) {
    if (line.find("brain.recompute_") != std::string::npos) continue;
    out += line;
    out += '\n';
  }
  return out;
}

struct RunSnapshot {
  std::string csv;
  std::string metrics;
};

RunSnapshot snapshot(std::uint64_t seed, sim::DeliveryBatch batch,
                     double trace_sample) {
  RunSnapshot s;
  s.csv = all_csv(run_with_batch(seed, batch, trace_sample));
  s.metrics = metrics_json_sans_wallclock();
  return s;
}

void expect_equal(const RunSnapshot& ref, const RunSnapshot& got,
                  const std::string& label) {
  if (got.csv != ref.csv) {
    std::size_t i = 0;
    const std::size_t n = std::min(got.csv.size(), ref.csv.size());
    while (i < n && got.csv[i] == ref.csv[i]) ++i;
    const std::size_t from = i > 120 ? i - 120 : 0;
    FAIL() << label << ": CSV diverges from the per-packet reference at byte "
           << i << "\n--- reference ---\n" << ref.csv.substr(from, 240)
           << "\n--- " << label << " ---\n" << got.csv.substr(from, 240);
  }
  EXPECT_EQ(got.metrics, ref.metrics)
      << label << ": metrics registry totals diverge";
}

TEST(BatchDifferential, QuantumSweepIsByteIdentical) {
  const std::uint64_t seed = 101;
  // Reference: the pre-batching behaviour, one upcall per packet.
  const RunSnapshot ref = snapshot(seed, sim::DeliveryBatch{0, 1}, 0.0);
  ASSERT_FALSE(ref.csv.empty());
  const struct {
    sim::DeliveryBatch batch;
    const char* label;
  } sweeps[] = {
      {{0, 2}, "quantum 0, pairs"},
      {{0, 8}, "quantum 0, 8-packet"},
      {{1 * kMs, 64}, "quantum 1 ms (default)"},
      {{10 * kMs, 1024}, "quantum 10 ms, wide"},
  };
  for (const auto& s : sweeps) {
    expect_equal(ref, snapshot(seed, s.batch, 0.0), s.label);
  }
}

TEST(BatchDifferential, DropAndHopAccountingIdenticalUnderFullTracing) {
  // Full tracing stamps every packet and records every hop and every
  // reason-coded drop; flaps from the chaos schedule land mid-burst.
  // Batched delivery must not double-count any of it.
  const std::uint64_t seed = 202;
  const RunSnapshot ref = snapshot(seed, sim::DeliveryBatch{0, 1}, 1.0);
  const RunSnapshot batched =
      snapshot(seed, sim::DeliveryBatch{1 * kMs, 64}, 1.0);
  expect_equal(ref, batched, "quantum 1 ms under full tracing");
}

}  // namespace
}  // namespace livenet
