#include <gtest/gtest.h>

#include "brain/brain.h"
#include "brain/global_discovery.h"
#include "brain/path_decision.h"
#include "brain/stream_mgmt.h"
#include "sim/network.h"

// Unit tests for the Streaming Brain's modules beyond routing: Global
// Discovery state keeping, overload invalidation lifecycles, Stream
// Management popularity, and the BrainNode service-queue model.
namespace livenet::brain {
namespace {

overlay::NodeStateReport report(sim::NodeId n, double load,
                                std::initializer_list<sim::NodeId> peers,
                                double util = 0.1) {
  overlay::NodeStateReport rep;
  rep.node = n;
  rep.node_load = load;
  for (const auto p : peers) {
    overlay::LinkReport lr;
    lr.to = p;
    lr.rtt = 40 * kMs;
    lr.loss_rate = 0.001;
    lr.utilization = util;
    rep.links.push_back(lr);
  }
  return rep;
}

TEST(GlobalDiscovery, KeepsLatestView) {
  GlobalDiscovery d;
  d.on_report(report(1, 0.3, {2, 3}), 100, nullptr);
  d.on_report(report(1, 0.5, {2}), 200, nullptr);
  EXPECT_DOUBLE_EQ(d.node_load(1), 0.5);
  ASSERT_NE(d.link(1, 2), nullptr);
  EXPECT_EQ(d.link(1, 2)->rtt, 40 * kMs);
  // Links persist across reports (stale entries age, not vanish).
  EXPECT_NE(d.link(1, 3), nullptr);
  EXPECT_EQ(d.link(2, 1), nullptr);  // directional
}

TEST(GlobalDiscovery, AlarmMarksAndHealthyReportClears) {
  GlobalDiscovery d(0.8);
  Pib pib;
  pib.set_paths(0, 2, {{0, 1, 2}});

  overlay::OverloadAlarm alarm;
  alarm.node = 1;
  alarm.node_load = 0.9;
  d.on_alarm(alarm, &pib);
  EXPECT_TRUE(pib.valid_paths(0, 2).empty());

  d.on_report(report(1, 0.4, {0, 2}), 300, &pib);
  EXPECT_EQ(pib.valid_paths(0, 2).size(), 1u);
}

TEST(GlobalDiscovery, LinkAlarmInvalidatesOnlyAffectedPaths) {
  GlobalDiscovery d(0.8);
  Pib pib;
  pib.set_paths(0, 3, {{0, 1, 3}, {0, 2, 3}});

  overlay::OverloadAlarm alarm;
  alarm.node = 1;
  alarm.node_load = 0.2;  // node fine, one link hot
  alarm.overloaded_links = {3};
  d.on_alarm(alarm, &pib);
  const auto valid = pib.valid_paths(0, 3);
  ASSERT_EQ(valid.size(), 1u);
  EXPECT_EQ(valid[0][1], 2);
}

TEST(StreamMgmt, PopularityRanksByRequests) {
  StreamMgmt mgmt;
  Sib sib;
  for (media::StreamId s = 1; s <= 4; ++s) sib.set_producer(s, 1);
  mgmt.note_request(2);
  mgmt.note_request(2);
  mgmt.note_request(2);
  mgmt.note_request(3);
  mgmt.note_request(3);
  mgmt.note_request(4);
  const auto top = mgmt.popular_streams(2, sib);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0], 2u);
  EXPECT_EQ(top[1], 3u);
}

TEST(StreamMgmt, PinnedStreamsComeFirst) {
  StreamMgmt mgmt;
  Sib sib;
  for (media::StreamId s = 1; s <= 3; ++s) sib.set_producer(s, 1);
  mgmt.note_request(1);
  mgmt.note_request(1);
  mgmt.mark_popular(3);  // campaign notified in advance
  const auto top = mgmt.popular_streams(2, sib);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0], 3u);
  EXPECT_EQ(top[1], 1u);
}

TEST(StreamMgmt, EndedStreamsDropOut) {
  StreamMgmt mgmt;
  Sib sib;
  overlay::StreamRegister reg;
  reg.stream_id = 9;
  reg.producer = 4;
  reg.active = true;
  mgmt.on_register(reg, &sib);
  EXPECT_EQ(sib.producer_of(9), 4);
  mgmt.note_request(9);

  reg.active = false;
  mgmt.on_register(reg, &sib);
  EXPECT_EQ(sib.producer_of(9), sim::kNoNode);
  EXPECT_TRUE(mgmt.popular_streams(3, sib).empty());
}

// ------------------------------------------------------------- BrainNode

class Probe final : public sim::SimNode {
 public:
  void on_message(sim::NodeId, const sim::MessagePtr& msg) override {
    if (auto resp =
            sim::msg_cast<const overlay::PathResponse>(msg)) {
      responses.push_back(resp);
    }
  }
  std::vector<sim::IntrusivePtr<const overlay::PathResponse>> responses;
};

TEST(BrainNode, ServiceQueueBuildsResponseTimeUnderBurst) {
  sim::EventLoop loop;
  sim::Network net(&loop);
  BrainConfig cfg;
  cfg.request_service_time = 2 * kMs;
  BrainNode brain(&net, cfg);
  const auto brain_id = net.add_node(&brain);
  Probe consumer;
  const auto cid = net.add_node(&consumer);
  sim::LinkConfig lc;
  lc.propagation_delay = 1 * kMs;
  lc.jitter_stddev = 0;
  net.add_bidi_link(brain_id, cid, lc);

  // Register a stream and give the brain a trivial PIB entry.
  auto reg = sim::make_message<overlay::StreamRegister>();
  reg->stream_id = 5;
  reg->producer = 7;
  net.send(cid, brain_id, reg);
  loop.run_until(10 * kMs);

  // A burst of 10 simultaneous requests: the i-th waits i service times.
  for (int i = 0; i < 10; ++i) {
    auto req = sim::make_message<overlay::PathRequest>();
    req->request_id = static_cast<std::uint64_t>(i + 1);
    req->stream_id = 5;
    req->consumer = cid;
    net.send(cid, brain_id, req);
  }
  loop.run_until(1 * kSec);

  ASSERT_EQ(brain.metrics().path_requests.size(), 10u);
  const auto& logs = brain.metrics().path_requests;
  EXPECT_EQ(logs.front().response_time, 2 * kMs);
  EXPECT_EQ(logs.back().response_time, 20 * kMs);  // queued behind 9
  EXPECT_EQ(consumer.responses.size(), 10u);
}

TEST(BrainNode, UnknownStreamYieldsEmptyPaths) {
  sim::EventLoop loop;
  sim::Network net(&loop);
  BrainNode brain(&net);
  const auto brain_id = net.add_node(&brain);
  Probe consumer;
  const auto cid = net.add_node(&consumer);
  sim::LinkConfig lc;
  lc.propagation_delay = 1 * kMs;
  net.add_bidi_link(brain_id, cid, lc);

  auto req = sim::make_message<overlay::PathRequest>();
  req->request_id = 1;
  req->stream_id = 404;
  req->consumer = cid;
  net.send(cid, brain_id, req);
  loop.run_until(1 * kSec);

  ASSERT_EQ(consumer.responses.size(), 1u);
  EXPECT_TRUE(consumer.responses[0]->paths.empty());
}

TEST(BrainNode, ZeroLengthPathWhenConsumerIsProducer) {
  sim::EventLoop loop;
  sim::Network net(&loop);
  BrainNode brain(&net);
  const auto brain_id = net.add_node(&brain);
  Probe consumer;
  const auto cid = net.add_node(&consumer);
  sim::LinkConfig lc;
  lc.propagation_delay = 1 * kMs;
  net.add_bidi_link(brain_id, cid, lc);

  auto reg = sim::make_message<overlay::StreamRegister>();
  reg->stream_id = 5;
  reg->producer = cid;  // same node
  net.send(cid, brain_id, reg);
  loop.run_until(10 * kMs);

  auto req = sim::make_message<overlay::PathRequest>();
  req->request_id = 1;
  req->stream_id = 5;
  req->consumer = cid;
  net.send(cid, brain_id, req);
  loop.run_until(1 * kSec);

  ASSERT_EQ(consumer.responses.size(), 1u);
  ASSERT_EQ(consumer.responses[0]->paths.size(), 1u);
  EXPECT_EQ(overlay::path_length(consumer.responses[0]->paths[0]), 0);
}

// ------------------------------------------------ PathDecision cache

/// The cached lookup must agree with the uncached oracle after every
/// kind of PIB/SIB mutation the control plane performs.
void expect_cached_matches_oracle(const PathDecision& pd, media::StreamId s,
                                  sim::NodeId consumer) {
  const PathDecision::Lookup ref = pd.get_path(s, consumer);
  const PathDecision::Lookup& cached = pd.get_path_cached(s, consumer);
  EXPECT_EQ(ref.stream_known, cached.stream_known);
  EXPECT_EQ(ref.last_resort, cached.last_resort);
  EXPECT_EQ(ref.paths, cached.paths);
}

TEST(PathDecision, CachedLookupTracksPibChurn) {
  Pib pib;
  Sib sib;
  sib.set_producer(7, 0);
  pib.set_paths(0, 3, {{0, 1, 3}, {0, 2, 3}});
  pib.set_last_resort(0, 3, {0, 5, 3});
  PathDecision pd(&pib, &sib);

  expect_cached_matches_oracle(pd, 7, 3);
  // Warm hit: unchanged stamp serves the same entry, no recompute.
  const auto* entry = &pd.get_path_cached(7, 3);
  EXPECT_EQ(entry, &pd.get_path_cached(7, 3));
  EXPECT_EQ(pd.cache_size(), 1u);

  pib.mark_node_overloaded(1);  // kills candidate {0,1,3}
  expect_cached_matches_oracle(pd, 7, 3);
  pib.mark_node_overloaded(2);  // kills the rest: last resort serves
  expect_cached_matches_oracle(pd, 7, 3);
  pib.clear_node_overloaded(1);
  expect_cached_matches_oracle(pd, 7, 3);
  pib.mark_link_overloaded(0, 2);
  expect_cached_matches_oracle(pd, 7, 3);
  pib.set_paths(0, 3, {{0, 4, 3}});  // route reinstall
  expect_cached_matches_oracle(pd, 7, 3);

  // Producer migration: the stream re-keys to a different pair entry.
  sib.set_producer(7, 2);
  pib.set_paths(2, 3, {{2, 3}});
  expect_cached_matches_oracle(pd, 7, 3);
  // Unknown stream and producer == consumer corners.
  expect_cached_matches_oracle(pd, 999, 3);
  expect_cached_matches_oracle(pd, 7, 2);

  // Global Routing's double-buffered install path.
  Pib scratch;
  scratch.set_paths(2, 3, {{2, 6, 3}});
  pib.swap_routes(&scratch);
  expect_cached_matches_oracle(pd, 7, 3);
  pib.copy_routes_from(scratch);
  expect_cached_matches_oracle(pd, 7, 3);
  pib.clear();
  expect_cached_matches_oracle(pd, 7, 3);
}

TEST(Pib, NoOpOverloadMarksDoNotBumpTheVersion) {
  Pib pib;
  const std::uint64_t v0 = pib.version();
  pib.clear_node_overloaded(42);   // was never marked
  pib.clear_link_overloaded(1, 2);
  EXPECT_EQ(pib.version(), v0);
  pib.mark_node_overloaded(42);
  const std::uint64_t v1 = pib.version();
  EXPECT_NE(v1, v0);
  pib.mark_node_overloaded(42);    // already marked: no churn
  EXPECT_EQ(pib.version(), v1);
}

}  // namespace
}  // namespace livenet::brain
