#include <gtest/gtest.h>

#include <sstream>

#include "livenet/csv.h"
#include "livenet/defaults.h"
#include "livenet/report.h"

// Whole-system determinism (the reproducibility contract: identical
// seeds produce bit-identical experiments) and the CSV exporters.
namespace livenet {
namespace {

ScenarioResult tiny_run(std::uint64_t seed) {
  SystemConfig sys_cfg = paper_system_config(seed);
  sys_cfg.countries = 2;
  sys_cfg.nodes_per_country = 3;
  ScenarioConfig scn;
  scn.duration = 40 * kSec;
  scn.day_length = 20 * kSec;
  scn.broadcasts = 3;
  scn.viewer_rate_peak = 1.0;
  scn.mean_view_time = 10 * kSec;
  scn.seed = seed;
  LiveNetSystem system(sys_cfg);
  ScenarioRunner runner(system, scn);
  return runner.run();
}

std::string all_csv(const ScenarioResult& r) {
  std::ostringstream os;
  write_sessions_csv(r, os);
  write_views_csv(r, os);
  write_path_requests_csv(r, os);
  write_timeline_csv(r, os);
  return os.str();
}

TEST(Determinism, IdenticalSeedsProduceIdenticalRuns) {
  const std::string a = all_csv(tiny_run(101));
  const std::string b = all_csv(tiny_run(101));
  EXPECT_EQ(a, b);
}

TEST(Determinism, DifferentSeedsDiverge) {
  const std::string a = all_csv(tiny_run(101));
  const std::string b = all_csv(tiny_run(202));
  EXPECT_NE(a, b);
}

TEST(Csv, SessionsRowsMatchRecordCount) {
  const ScenarioResult r = tiny_run(7);
  std::ostringstream os;
  write_sessions_csv(r, os);
  const std::string out = os.str();
  const auto rows = std::count(out.begin(), out.end(), '\n');
  EXPECT_EQ(static_cast<std::size_t>(rows),
            r.overlay.sessions().size() + 1);  // + header
  EXPECT_NE(out.find("cdn_delay_ms_mean"), std::string::npos);
}

TEST(Csv, ViewsRowsMatchRecordCount) {
  const ScenarioResult r = tiny_run(7);
  std::ostringstream os;
  write_views_csv(r, os);
  const std::string out = os.str();
  const auto rows = std::count(out.begin(), out.end(), '\n');
  EXPECT_EQ(static_cast<std::size_t>(rows), r.clients.records().size() + 1);
}

TEST(Csv, TimelineAndPathRequestsNonEmpty) {
  const ScenarioResult r = tiny_run(7);
  std::ostringstream t, p;
  write_timeline_csv(r, t);
  write_path_requests_csv(r, p);
  const std::string ts = t.str(), ps = p.str();
  EXPECT_GT(std::count(ts.begin(), ts.end(), '\n'), 2);
  EXPECT_GT(std::count(ps.begin(), ps.end(), '\n'), 1);
}

}  // namespace
}  // namespace livenet
