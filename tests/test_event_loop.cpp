#include "sim/event_loop.h"

#include <gtest/gtest.h>

#include <vector>

namespace livenet::sim {
namespace {

TEST(EventLoop, DispatchesInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_at(30, [&] { order.push_back(3); });
  loop.schedule_at(10, [&] { order.push_back(1); });
  loop.schedule_at(20, [&] { order.push_back(2); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), 30);
}

TEST(EventLoop, FifoWithinSameInstant) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    loop.schedule_at(100, [&order, i] { order.push_back(i); });
  }
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventLoop, ScheduleAfterUsesCurrentTime) {
  EventLoop loop;
  Time fired_at = kNever;
  loop.schedule_at(50, [&] {
    loop.schedule_after(25, [&] { fired_at = loop.now(); });
  });
  loop.run();
  EXPECT_EQ(fired_at, 75);
}

TEST(EventLoop, CancelPreventsDispatch) {
  EventLoop loop;
  bool fired = false;
  const EventId id = loop.schedule_at(10, [&] { fired = true; });
  loop.cancel(id);
  loop.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(loop.dispatched(), 0u);
}

TEST(EventLoop, CancelIsIdempotentAndSafeAfterRun) {
  EventLoop loop;
  int count = 0;
  const EventId id = loop.schedule_at(5, [&] { ++count; });
  loop.run();
  EXPECT_EQ(count, 1);
  loop.cancel(id);  // already ran: must be a no-op
  loop.cancel(id);
  EXPECT_EQ(loop.pending(), 0u);
}

TEST(EventLoop, RunUntilStopsAtBoundaryInclusive) {
  EventLoop loop;
  std::vector<Time> fired;
  loop.schedule_at(10, [&] { fired.push_back(10); });
  loop.schedule_at(20, [&] { fired.push_back(20); });
  loop.schedule_at(21, [&] { fired.push_back(21); });
  loop.run_until(20);
  EXPECT_EQ(fired, (std::vector<Time>{10, 20}));
  EXPECT_EQ(loop.now(), 20);
  loop.run();
  EXPECT_EQ(fired.back(), 21);
}

TEST(EventLoop, RunUntilAdvancesTimeWithEmptyQueue) {
  EventLoop loop;
  loop.run_until(1000);
  EXPECT_EQ(loop.now(), 1000);
}

TEST(EventLoop, CancelledHeadDoesNotLeakPastRunUntil) {
  EventLoop loop;
  bool late_fired = false;
  const EventId id = loop.schedule_at(10, [] {});
  loop.schedule_at(50, [&] { late_fired = true; });
  loop.cancel(id);
  loop.run_until(20);
  EXPECT_FALSE(late_fired);  // the event at 50 must not run early
  EXPECT_EQ(loop.now(), 20);
}

TEST(EventLoop, PastDeadlineClampsToNow) {
  EventLoop loop;
  loop.schedule_at(100, [] {});
  loop.run();
  Time fired_at = kNever;
  loop.schedule_at(10, [&] { fired_at = loop.now(); });  // in the past
  loop.run();
  EXPECT_EQ(fired_at, 100);
}

TEST(EventLoop, EventsScheduledDuringDispatchRun) {
  EventLoop loop;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 10) loop.schedule_after(1, recurse);
  };
  loop.schedule_at(0, recurse);
  loop.run();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(loop.now(), 9);
}

}  // namespace
}  // namespace livenet::sim
