#include "sim/event_loop.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "util/rng.h"

namespace livenet::sim {
namespace {

TEST(EventLoop, DispatchesInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_at(30, [&] { order.push_back(3); });
  loop.schedule_at(10, [&] { order.push_back(1); });
  loop.schedule_at(20, [&] { order.push_back(2); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), 30);
}

TEST(EventLoop, FifoWithinSameInstant) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    loop.schedule_at(100, [&order, i] { order.push_back(i); });
  }
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventLoop, ScheduleAfterUsesCurrentTime) {
  EventLoop loop;
  Time fired_at = kNever;
  loop.schedule_at(50, [&] {
    loop.schedule_after(25, [&] { fired_at = loop.now(); });
  });
  loop.run();
  EXPECT_EQ(fired_at, 75);
}

TEST(EventLoop, CancelPreventsDispatch) {
  EventLoop loop;
  bool fired = false;
  const EventId id = loop.schedule_at(10, [&] { fired = true; });
  loop.cancel(id);
  loop.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(loop.dispatched(), 0u);
}

TEST(EventLoop, CancelIsIdempotentAndSafeAfterRun) {
  EventLoop loop;
  int count = 0;
  const EventId id = loop.schedule_at(5, [&] { ++count; });
  loop.run();
  EXPECT_EQ(count, 1);
  loop.cancel(id);  // already ran: must be a no-op
  loop.cancel(id);
  EXPECT_EQ(loop.pending(), 0u);
}

TEST(EventLoop, RunUntilStopsAtBoundaryInclusive) {
  EventLoop loop;
  std::vector<Time> fired;
  loop.schedule_at(10, [&] { fired.push_back(10); });
  loop.schedule_at(20, [&] { fired.push_back(20); });
  loop.schedule_at(21, [&] { fired.push_back(21); });
  loop.run_until(20);
  EXPECT_EQ(fired, (std::vector<Time>{10, 20}));
  EXPECT_EQ(loop.now(), 20);
  loop.run();
  EXPECT_EQ(fired.back(), 21);
}

TEST(EventLoop, RunUntilAdvancesTimeWithEmptyQueue) {
  EventLoop loop;
  loop.run_until(1000);
  EXPECT_EQ(loop.now(), 1000);
}

TEST(EventLoop, CancelledHeadDoesNotLeakPastRunUntil) {
  EventLoop loop;
  bool late_fired = false;
  const EventId id = loop.schedule_at(10, [] {});
  loop.schedule_at(50, [&] { late_fired = true; });
  loop.cancel(id);
  loop.run_until(20);
  EXPECT_FALSE(late_fired);  // the event at 50 must not run early
  EXPECT_EQ(loop.now(), 20);
}

TEST(EventLoop, PastDeadlineClampsToNow) {
  EventLoop loop;
  loop.schedule_at(100, [] {});
  loop.run();
  Time fired_at = kNever;
  loop.schedule_at(10, [&] { fired_at = loop.now(); });  // in the past
  loop.run();
  EXPECT_EQ(fired_at, 100);
}

// Slab-allocator torture: a fixed-seed storm of schedule / cancel /
// reschedule churns slots through the free list, recycling generations,
// while a naive reference model (a multimap ordered by (time, seq))
// tracks which events must fire and in what order. Divergence means a
// stale-generation handle resurrected a recycled slot or the queue
// dropped a live event.
TEST(EventLoopStress, RandomCancelRescheduleMatchesReferenceModel) {
  EventLoop loop;
  Rng rng(9001);
  std::vector<int> fired;          // ids in dispatch order (actual)
  std::vector<int> expected;       // ids in dispatch order (model)
  struct Pending {
    EventId handle;
    Time when;
    std::uint64_t order;  // model FIFO tie-breaker
  };
  std::map<int, Pending> live;     // id -> pending event
  std::uint64_t order_counter = 0;
  int next_id = 0;

  // Interleave 2000 operations with partial dispatching so slots are
  // released both by cancellation and by normal dispatch, forcing heavy
  // free-list reuse across generations.
  for (int round = 0; round < 40; ++round) {
    for (int op = 0; op < 50; ++op) {
      const auto roll = rng.index(10);
      if (roll < 6 || live.empty()) {
        const int id = next_id++;
        const Time when = loop.now() + static_cast<Time>(rng.index(500));
        const auto handle =
            loop.schedule_at(when, [&fired, id] { fired.push_back(id); });
        live[id] = Pending{handle, std::max(when, loop.now()), order_counter++};
      } else if (roll < 8) {
        // Cancel a pseudo-random live event.
        auto it = live.begin();
        std::advance(it, static_cast<long>(rng.index(live.size())));
        loop.cancel(it->second.handle);
        live.erase(it);
      } else {
        // Reschedule: cancel + schedule again at a new time.
        auto it = live.begin();
        std::advance(it, static_cast<long>(rng.index(live.size())));
        loop.cancel(it->second.handle);
        const int id = it->first;
        const Time when = loop.now() + static_cast<Time>(rng.index(500));
        it->second.handle =
            loop.schedule_at(when, [&fired, id] { fired.push_back(id); });
        it->second.when = std::max(when, loop.now());
        it->second.order = order_counter++;
      }
    }
    // Dispatch everything due in the next 100 us of virtual time.
    const Time horizon = loop.now() + 100;
    loop.run_until(horizon);
    // Drain the model the same way: (when, order) ascending.
    std::vector<std::pair<int, Pending>> due;
    for (const auto& [id, p] : live) {
      if (p.when <= horizon) due.emplace_back(id, p);
    }
    std::sort(due.begin(), due.end(), [](const auto& a, const auto& b) {
      return a.second.when != b.second.when ? a.second.when < b.second.when
                                            : a.second.order < b.second.order;
    });
    for (const auto& [id, p] : due) {
      expected.push_back(id);
      live.erase(id);
    }
    ASSERT_EQ(fired, expected) << "diverged in round " << round;
    EXPECT_EQ(loop.pending(), live.size());
  }
  loop.run();
  std::vector<std::pair<int, Pending>> rest;
  for (const auto& [id, p] : live) rest.emplace_back(id, p);
  std::sort(rest.begin(), rest.end(), [](const auto& a, const auto& b) {
    return a.second.when != b.second.when ? a.second.when < b.second.when
                                          : a.second.order < b.second.order;
  });
  for (const auto& [id, p] : rest) expected.push_back(id);
  EXPECT_EQ(fired, expected);
  EXPECT_EQ(loop.pending(), 0u);
  EXPECT_EQ(loop.dispatched(), fired.size());
}

// Cancelling inside a callback — including self-cancellation and
// cancelling an event at the same instant — must be safe and exact.
TEST(EventLoopStress, CancelDuringDispatchOfSameInstant) {
  EventLoop loop;
  std::vector<int> order;
  EventId b = kInvalidEvent;
  loop.schedule_at(10, [&] {
    order.push_back(0);
    loop.cancel(b);  // b is due at the same instant, later in FIFO
  });
  b = loop.schedule_at(10, [&] { order.push_back(1); });
  loop.schedule_at(10, [&] { order.push_back(2); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{0, 2}));
}

TEST(EventLoop, EventsScheduledDuringDispatchRun) {
  EventLoop loop;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 10) loop.schedule_after(1, recurse);
  };
  loop.schedule_at(0, recurse);
  loop.run();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(loop.now(), 9);
}

// --------------------------------------- batched-delivery support API

TEST(EventLoop, NextIsAfterOrdersByTimeThenSeq) {
  EventLoop loop;
  EXPECT_TRUE(loop.idle_at(1 * kSec));  // empty queue: nothing pending
  const std::uint64_t s = loop.reserve_seq();
  loop.schedule_at(10, [] {});  // consumes seq s + 1
  EXPECT_TRUE(loop.next_is_after(9, s + 100));   // earlier instant
  EXPECT_TRUE(loop.next_is_after(10, s));        // same instant, before
  EXPECT_FALSE(loop.next_is_after(10, s + 1));   // the event itself
  EXPECT_FALSE(loop.next_is_after(10, s + 2));   // same instant, after
  EXPECT_FALSE(loop.idle_at(10));
  EXPECT_TRUE(loop.idle_at(9));
}

TEST(EventLoop, NextIsAfterSeesThroughCancelledEvents) {
  EventLoop loop;
  const EventId a = loop.schedule_at(10, [] {});
  loop.schedule_at(20, [] {});
  loop.cancel(a);
  EXPECT_TRUE(loop.idle_at(10));  // the zombie at 10 must be pruned
  EXPECT_FALSE(loop.idle_at(20));
}

TEST(EventLoop, ScheduleAtSeqPinsDispatchOrder) {
  EventLoop loop;
  std::vector<int> order;
  const std::uint64_t early = loop.reserve_seq();
  loop.schedule_at(10, [&] { order.push_back(1); });
  // Scheduled later but pinned at the earlier reserved slot: runs first.
  loop.schedule_at_seq(10, early, [&] { order.push_back(0); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

TEST(EventLoop, AdvanceToMovesNowAndHorizonTracksRunUntil) {
  EventLoop loop;
  EXPECT_EQ(loop.horizon(), EventLoop::kNoHorizon);
  Time seen_horizon = 0;
  Time seen_now = 0;
  loop.schedule_at(10, [&] {
    seen_horizon = loop.horizon();
    loop.advance_to(15);
    seen_now = loop.now();
    loop.advance_to(5);  // never moves backwards
  });
  loop.run_until(20);
  EXPECT_EQ(seen_horizon, 20);
  EXPECT_EQ(seen_now, 15);
  EXPECT_EQ(loop.now(), 20);
  EXPECT_EQ(loop.horizon(), EventLoop::kNoHorizon);  // restored on exit
}

}  // namespace
}  // namespace livenet::sim
