#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "client/broadcaster.h"
#include "client/viewer.h"
#include "livenet/csv.h"
#include "livenet/defaults.h"
#include "livenet/report.h"
#include "sim/fault_injector.h"
#include "sim/network.h"

// The fault-injection subsystem: deterministic chaos schedules, link
// fault mechanics with measured recovery, and full-system failover
// (relay crash, Brain outage with replica takeover).
namespace livenet {
namespace {

using sim::FaultInjector;
using sim::FaultKind;
using sim::FaultPlan;
using sim::FaultSpec;

class Probe final : public sim::SimNode {
 public:
  void on_message(sim::NodeId from, const sim::MessagePtr& msg) override {
    (void)from;
    (void)msg;
    ++received;
  }
  int received = 0;
};

class Blob final : public sim::Message {
 public:
  explicit Blob(std::size_t n) : n_(n) {}
  std::size_t wire_size() const override { return n_; }
  std::string describe() const override { return "blob"; }

 private:
  std::size_t n_;
};

sim::LinkConfig clean_link() {
  sim::LinkConfig lc;
  lc.propagation_delay = 5 * kMs;
  lc.bandwidth_bps = 8e6;
  lc.loss_rate = 0.0;
  lc.jitter_stddev = 0;
  return lc;
}

std::vector<FaultSpec> planned_specs(const FaultPlan& plan) {
  sim::EventLoop loop;
  sim::Network net(&loop);
  Probe a, b, c;
  net.add_node(&a);
  net.add_node(&b);
  net.add_node(&c);
  net.add_link(0, 1, clean_link());
  net.add_link(1, 0, clean_link());
  net.add_link(1, 2, clean_link());
  net.add_link(2, 1, clean_link());
  FaultInjector inj(&net);
  inj.load_plan(plan, 10 * kMin, {{0, 1}, {1, 2}}, {2}, 0);
  std::vector<FaultSpec> out;
  for (const auto& r : inj.records()) out.push_back(r.spec);
  return out;
}

TEST(FaultInjector, SameSeedSameSchedule) {
  FaultPlan plan;
  plan.seed = 77;
  plan.link_flaps_per_min = 4.0;
  plan.degrades_per_min = 3.0;
  plan.node_crashes_per_min = 1.0;
  plan.control_outages_per_min = 0.5;

  const auto a = planned_specs(plan);
  const auto b = planned_specs(plan);
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].at, b[i].at);
    EXPECT_EQ(a[i].duration, b[i].duration);
    EXPECT_EQ(a[i].a, b[i].a);
    EXPECT_EQ(a[i].b, b[i].b);
  }

  plan.seed = 78;
  const auto c = planned_specs(plan);
  bool differs = c.size() != a.size();
  for (std::size_t i = 0; !differs && i < a.size(); ++i) {
    differs = a[i].at != c[i].at || a[i].a != c[i].a || a[i].b != c[i].b;
  }
  EXPECT_TRUE(differs);
}

TEST(FaultInjector, LinkFlapBlackholesThenRecovers) {
  sim::EventLoop loop;
  sim::Network net(&loop);
  Probe a, b;
  const auto ida = net.add_node(&a);
  const auto idb = net.add_node(&b);
  net.add_bidi_link(ida, idb, clean_link());
  FaultInjector inj(&net);

  FaultSpec flap;
  flap.kind = FaultKind::kLinkFlap;
  flap.at = 100 * kMs;
  flap.duration = 200 * kMs;
  flap.a = ida;
  flap.b = idb;
  inj.inject(flap);

  // Constant probe traffic, one packet every 5 ms.
  std::function<void()> tick = [&] {
    net.send(ida, idb, sim::make_message<Blob>(100));
    if (loop.now() < 1 * kSec) loop.schedule_after(5 * kMs, tick);
  };
  loop.schedule_at(0, tick);
  loop.run_until(2 * kSec);

  const auto& recs = inj.records();
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].injected_at, 100 * kMs);
  EXPECT_EQ(recs[0].repaired_at, 300 * kMs);
  ASSERT_TRUE(recs[0].recovered());
  // First packet after repair lands within a send gap + poll interval.
  EXPECT_LE(recs[0].recovery_time(), 30 * kMs);
  // Packets offered during the outage were black-holed.
  const auto* l = net.link(ida, idb);
  EXPECT_GT(l->stats().packets_lost, 30u);
  EXPECT_FALSE(l->is_down());
  EXPECT_EQ(inj.faults_active(), 0u);
}

TEST(FaultInjector, OverlappingDegradesClearOnlyAfterLast) {
  sim::EventLoop loop;
  sim::Network net(&loop);
  Probe a, b;
  const auto ida = net.add_node(&a);
  const auto idb = net.add_node(&b);
  net.add_bidi_link(ida, idb, clean_link());
  FaultInjector inj(&net);

  FaultSpec d1;
  d1.kind = FaultKind::kLinkDegrade;
  d1.at = 0;
  d1.duration = 100 * kMs;
  d1.a = ida;
  d1.b = idb;
  d1.loss = 0.5;
  FaultSpec d2 = d1;
  d2.at = 50 * kMs;
  d2.duration = 200 * kMs;  // repairs at 250 ms
  inj.inject(d1);
  inj.inject(d2);

  const auto* l = net.link(ida, idb);
  loop.schedule_at(150 * kMs, [&] {
    // d1 repaired, d2 still holds: the override must survive.
    EXPECT_DOUBLE_EQ(l->effective_loss_rate(), 0.5);
  });
  loop.run_until(1 * kSec);
  EXPECT_DOUBLE_EQ(l->effective_loss_rate(), 0.0);
}

TEST(FaultInjector, DownSurvivesBaseLossRewrite) {
  // CdnSystem::set_loss_scale rewrites the base loss on every timeline
  // sample; an injected outage must not be cleared by that.
  sim::EventLoop loop;
  sim::Network net(&loop);
  Probe a, b;
  const auto ida = net.add_node(&a);
  const auto idb = net.add_node(&b);
  net.add_bidi_link(ida, idb, clean_link());
  sim::Link* l = net.link(ida, idb);
  l->set_down(true);
  l->set_loss_rate(0.001);  // diurnal rescale while the fault is active
  EXPECT_DOUBLE_EQ(l->effective_loss_rate(), 1.0);
  EXPECT_FALSE(l->send(100).delivered);
  l->set_down(false);
  EXPECT_DOUBLE_EQ(l->effective_loss_rate(), 0.001);
}

TEST(FaultInjection, RelayCrashViewerRecovers) {
  SystemConfig cfg;
  cfg.countries = 3;
  cfg.nodes_per_country = 4;
  cfg.dns_candidates = 1;
  cfg.last_resort_nodes = 1;
  cfg.brain.routing_interval = 6 * kSec;
  cfg.overlay_node.report_interval = 2 * kSec;
  cfg.seed = 99;
  LiveNetSystem sys(cfg);
  client::ClientMetrics qoe;
  client::BroadcasterConfig bc;
  media::VideoSourceConfig vc;
  vc.fps = 25;
  vc.gop_frames = 25;
  vc.bitrate_bps = 1e6;
  bc.versions = {vc};
  client::Broadcaster bcast(&sys.network(), 1, bc);
  sys.build_once();
  sys.start();
  const auto producer = sys.attach_client(&bcast, sys.geo().sample_site(0));
  bcast.start(producer, {1});
  sys.loop().run_until(8 * kSec);

  client::Viewer viewer(&sys.network(), &qoe);
  const auto consumer = sys.attach_client(&viewer, sys.geo().sample_site(1));
  viewer.start_view(consumer, 1);
  sys.loop().run_until(16 * kSec);

  const auto* entry = sys.node(consumer).fib().find(1);
  ASSERT_NE(entry, nullptr);
  const auto relay = entry->upstream;
  if (relay == sim::kNoNode || relay == producer) {
    GTEST_SKIP() << "direct path: no relay to kill";
  }
  const auto frames_before = qoe.records().front().frames_displayed;
  ASSERT_GT(frames_before, 100u);

  FaultInjector inj(&sys.network());
  inj.set_node_handlers([&](sim::NodeId n) { sys.crash_node(n); },
                        [&](sim::NodeId n) { sys.restart_node(n); });
  // Long enough for the Brain to notice the silent relay and steer the
  // consumer's quality-triggered switch onto a different upstream.
  FaultSpec crash;
  crash.kind = FaultKind::kNodeCrash;
  crash.at = sys.loop().now();
  crash.duration = 20 * kSec;
  crash.a = relay;
  inj.inject(crash);
  sys.loop().run_until(56 * kSec);

  // The consumer re-routed off the crashed relay and playback resumed.
  const auto* after = sys.node(consumer).fib().find(1);
  ASSERT_NE(after, nullptr);
  EXPECT_NE(after->upstream, relay);
  EXPECT_GE(sys.sessions().sessions().front().path_switches, 1);
  EXPECT_GT(qoe.records().front().frames_displayed, frames_before + 200);
  // The crashed relay rejoined: its restart report reached the Brain,
  // so the fault recovered (first packet on a repaired link).
  ASSERT_EQ(inj.records().size(), 1u);
  EXPECT_TRUE(inj.records()[0].repaired());
  EXPECT_TRUE(inj.records()[0].recovered());
  // The wiped relay no longer carries the stream's soft state.
  EXPECT_EQ(sys.node(relay).fib().find(1), nullptr);
}

TEST(FaultInjection, BrainOutageReplicasServeNewViewers) {
  SystemConfig cfg;
  cfg.countries = 3;
  cfg.nodes_per_country = 3;
  cfg.dns_candidates = 1;
  cfg.path_decision_replicas = 2;
  cfg.brain.routing_interval = 4 * kSec;
  cfg.overlay_node.report_interval = 2 * kSec;
  cfg.seed = 12;
  LiveNetSystem sys(cfg);
  client::ClientMetrics qoe;
  client::BroadcasterConfig bc;
  media::VideoSourceConfig vc;
  vc.fps = 25;
  vc.gop_frames = 25;
  vc.bitrate_bps = 1e6;
  bc.versions = {vc};
  client::Broadcaster bcast(&sys.network(), 1, bc);
  sys.build_once();
  sys.start();
  bcast.start(sys.attach_client(&bcast, sys.geo().sample_site(0)), {1});
  sys.loop().run_until(10 * kSec);

  // Isolate the Brain; replicas keep answering path lookups (§7.1).
  FaultInjector inj(&sys.network());
  inj.set_node_handlers([&](sim::NodeId n) { sys.crash_node(n); },
                        [&](sim::NodeId n) { sys.restart_node(n); });
  FaultSpec outage;
  outage.kind = FaultKind::kControlOutage;
  outage.at = sys.loop().now();
  outage.duration = 20 * kSec;
  outage.a = sys.control_node();
  inj.inject(outage);
  sys.loop().run_until(12 * kSec);

  client::Viewer viewer(&sys.network(), &qoe);
  const auto consumer = sys.attach_client(&viewer, sys.geo().sample_site(1));
  viewer.start_view(consumer, 1);
  sys.loop().run_until(28 * kSec);

  // The view was established while the primary was unreachable.
  ASSERT_EQ(qoe.records().size(), 1u);
  EXPECT_FALSE(qoe.records().front().view_failed);
  EXPECT_GT(qoe.records().front().frames_displayed, 50u);
  ASSERT_EQ(sys.sessions().sessions().size(), 1u);
  EXPECT_FALSE(sys.sessions().sessions().front().failed);
}

// ------------------------------------------------------- chaos scenarios

ScenarioResult chaos_run(std::uint64_t seed, std::uint64_t fault_seed) {
  SystemConfig sys_cfg = paper_system_config(seed);
  sys_cfg.countries = 2;
  sys_cfg.nodes_per_country = 3;
  ScenarioConfig scn;
  scn.duration = 40 * kSec;
  scn.day_length = 20 * kSec;
  scn.broadcasts = 3;
  scn.viewer_rate_peak = 1.0;
  scn.mean_view_time = 10 * kSec;
  scn.seed = seed;
  scn.faults.seed = fault_seed;
  scn.faults.link_flaps_per_min = 3.0;
  scn.faults.degrades_per_min = 2.0;
  scn.faults.node_crashes_per_min = 1.0;
  LiveNetSystem system(sys_cfg);
  ScenarioRunner runner(system, scn);
  return runner.run();
}

std::string chaos_csv(const ScenarioResult& r) {
  std::ostringstream os;
  write_sessions_csv(r, os);
  write_views_csv(r, os);
  write_path_requests_csv(r, os);
  write_timeline_csv(r, os);
  write_faults_csv(r, os);
  return os.str();
}

TEST(ChaosDeterminism, SeededChaosRunIsBitReproducible) {
  const ScenarioResult a = chaos_run(101, 5);
  const ScenarioResult b = chaos_run(101, 5);
  EXPECT_FALSE(a.faults.empty());
  EXPECT_EQ(chaos_csv(a), chaos_csv(b));
}

TEST(ChaosDeterminism, FaultSeedChangesScheduleOnly) {
  const ScenarioResult a = chaos_run(101, 5);
  const ScenarioResult c = chaos_run(101, 6);
  std::ostringstream fa, fc;
  write_faults_csv(a, fa);
  write_faults_csv(c, fc);
  EXPECT_NE(fa.str(), fc.str());
}

TEST(ChaosRun, RecordsFaultsAndMeasuresRecovery) {
  const ScenarioResult r = chaos_run(7, 3);
  const FaultSummary sum = fault_summary(r);
  EXPECT_GT(sum.injected, 0u);
  EXPECT_GT(sum.repaired, 0u);
  // At least one repaired fault must show traffic resuming.
  EXPECT_GT(sum.recovered, 0u);
  EXPECT_GE(sum.max_recovery_ms, 0.0);
  std::ostringstream os;
  write_faults_csv(r, os);
  const std::string csv = os.str();
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(csv.begin(), csv.end(), '\n')),
            r.faults.size() + 1);
}

}  // namespace
}  // namespace livenet
