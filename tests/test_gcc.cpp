#include <gtest/gtest.h>

#include "transport/gcc.h"

namespace livenet::transport {
namespace {

TEST(RateMeter, ComputesWindowedRate) {
  RateMeter m(1 * kSec);
  for (int i = 0; i < 10; ++i) {
    m.add(i * 100 * kMs, 12500);  // 12.5 KB every 100 ms = 1 Mbps
  }
  EXPECT_NEAR(m.rate_bps(1 * kSec), 1e6, 1e5);
}

TEST(RateMeter, RampUpUsesActualSpanNotFullWindow) {
  // Only 250 ms of a 1 s window is populated; dividing by the whole
  // window would report ~0.25 Mbps for a 1 Mbps flow.
  RateMeter m(1 * kSec);
  for (int i = 0; i <= 2; ++i) {
    m.add(i * 100 * kMs, 12500);
  }
  EXPECT_NEAR(m.rate_bps(250 * kMs), 1.2e6, 2e5);
}

TEST(RateMeter, FloorGuardsAgainstBurstAtSingleInstant) {
  RateMeter m(1 * kSec);
  m.add(0, 12500);
  m.add(0, 12500);
  // Span is zero; the floor (window / 8 = 125 ms) bounds the estimate.
  EXPECT_NEAR(m.rate_bps(0), 25000 * 8.0 / 0.125, 1.0);
}

TEST(RateMeter, RateDecaysWhenTrafficStops) {
  RateMeter m(1 * kSec);
  for (int i = 0; i < 5; ++i) {
    m.add(i * 100 * kMs, 12500);
  }
  const double at_end = m.rate_bps(400 * kMs);
  const double later = m.rate_bps(800 * kMs);
  EXPECT_LT(later, at_end);  // same bytes over a longer observed span
}

TEST(RateMeter, EvictsOldSamples) {
  RateMeter m(500 * kMs);
  m.add(0, 100000);
  EXPECT_GT(m.rate_bps(100 * kMs), 0.0);
  EXPECT_EQ(m.rate_bps(10 * kSec), 0.0);
}

TEST(RateMeter, NoEvictionBeforeOneFullWindowElapses) {
  // now < window: every timestamp is >= 0, so nothing can be stale.
  // An unsigned cutoff (now - window wrapping) would evict the whole
  // buffer at sim start; the guard must keep early samples intact.
  RateMeter m(1 * kSec);
  m.add(0, 12500);
  m.add(100 * kMs, 12500);
  EXPECT_GT(m.rate_bps(900 * kMs), 0.0);   // both samples retained
  EXPECT_GT(m.rate_bps(1 * kSec), 0.0);    // cutoff 0: t=0 not yet stale
  EXPECT_EQ(m.rate_bps(2 * kSec), 0.0);    // a full window later: evicted
}

TEST(InterArrival, ReorderedPacketFoldsIntoCurrentGroup) {
  InterArrival ia;
  EXPECT_FALSE(ia.on_packet(10 * kMs, 10 * kMs + 100).has_value());
  EXPECT_FALSE(ia.on_packet(20 * kMs, 20 * kMs + 150).has_value());
  // Sent before the current group opened: must fold into it (an
  // unsigned send span would wrap and falsely open a new group).
  EXPECT_FALSE(ia.on_packet(12 * kMs, 20 * kMs + 160).has_value());
  const auto d = ia.on_packet(40 * kMs, 40 * kMs + 150);
  ASSERT_TRUE(d.has_value());
  // Group boundaries are unaffected by the reordered packet's earlier
  // send time; its later arrival still extends the group's arrival.
  EXPECT_EQ(d->send_delta, 10 * kMs);          // 20ms - 10ms
  EXPECT_EQ(d->arrival_delta, 10 * kMs + 60);  // (20ms+160) - (10ms+100)
}

TEST(InterArrival, EmitsDeltasBetweenGroups) {
  InterArrival ia;
  // Group 1: packets at send 0..2ms; group 2 at 10..12ms; group 3 at 20.
  EXPECT_FALSE(ia.on_packet(0, 100).has_value());
  EXPECT_FALSE(ia.on_packet(2 * kMs, 2 * kMs + 100).has_value());
  EXPECT_FALSE(ia.on_packet(10 * kMs, 10 * kMs + 150).has_value());
  const auto d = ia.on_packet(20 * kMs, 20 * kMs + 150);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->send_delta, 8 * kMs);          // 10ms - 2ms
  EXPECT_EQ(d->arrival_delta, 8 * kMs + 50);  // extra 50us of queueing
}

TEST(Trendline, DetectsSustainedQueueGrowth) {
  TrendlineEstimator t;
  // Arrival delta exceeds send delta by 2 ms per group: a clear ramp.
  Time arrival = 0;
  for (int i = 0; i < 60; ++i) {
    arrival += 7 * kMs;
    t.update(5 * kMs, 7 * kMs, arrival);
  }
  EXPECT_EQ(t.state(), BandwidthUsage::kOverusing);
  EXPECT_GT(t.trend(), 0.0);
}

TEST(Trendline, StaysNormalOnStableDelay) {
  TrendlineEstimator t;
  Time arrival = 0;
  for (int i = 0; i < 60; ++i) {
    arrival += 5 * kMs;
    t.update(5 * kMs, 5 * kMs, arrival);
  }
  EXPECT_EQ(t.state(), BandwidthUsage::kNormal);
}

TEST(Trendline, DetectsDrainingQueueAsUnderuse) {
  TrendlineEstimator t;
  Time arrival = 0;
  for (int i = 0; i < 60; ++i) {
    arrival += 3 * kMs;
    t.update(5 * kMs, 3 * kMs, arrival);
  }
  EXPECT_EQ(t.state(), BandwidthUsage::kUnderusing);
}

TEST(Aimd, DecreasesOnOveruse) {
  AimdRateControl aimd(10e6);
  const double r =
      aimd.update(BandwidthUsage::kOverusing, 8e6, true, 1 * kSec);
  EXPECT_NEAR(r, 0.85 * 8e6, 1.0);
}

TEST(Aimd, IncreasesWhenNormal) {
  AimdRateControl aimd(1e6);
  double r = 1e6;
  Time now = 0;
  for (int i = 0; i < 20; ++i) {
    now += 100 * kMs;
    r = aimd.update(BandwidthUsage::kNormal, 2e6, true, now);
  }
  EXPECT_GT(r, 1e6);
}

TEST(Aimd, HoldsOnUnderuse) {
  AimdRateControl aimd(5e6);
  const double before =
      aimd.update(BandwidthUsage::kNormal, 5e6, true, 100 * kMs);
  const double after =
      aimd.update(BandwidthUsage::kUnderusing, 5e6, true, 200 * kMs);
  EXPECT_DOUBLE_EQ(before, after);
}

TEST(Aimd, NeverBelowMinRate) {
  AimdRateControl aimd(100e3);
  double r = 100e3;
  for (int i = 1; i <= 50; ++i) {
    r = aimd.update(BandwidthUsage::kOverusing, 1e3, true,
                    static_cast<Time>(i) * 100 * kMs);
  }
  EXPECT_GE(r, 64e3);
}

TEST(GccSender, PacingRateIsMinOfLossAndDelayEstimates) {
  GccSender::Config cfg;
  cfg.start_rate_bps = 10e6;
  GccSender s(cfg);
  s.on_feedback(4e6, 0.0);  // REMB below loss-based estimate
  EXPECT_NEAR(s.pacing_rate_bps(), 4e6, 1e3);
}

TEST(GccSender, HighLossCutsRate) {
  GccSender::Config cfg;
  cfg.start_rate_bps = 10e6;
  GccSender s(cfg);
  const double before = s.pacing_rate_bps();
  s.on_feedback(100e6, 0.3);  // 30% loss
  EXPECT_LT(s.pacing_rate_bps(), before);
}

TEST(GccSender, LowLossProbesUp) {
  GccSender::Config cfg;
  cfg.start_rate_bps = 10e6;
  GccSender s(cfg);
  for (int i = 0; i < 10; ++i) s.on_feedback(100e6, 0.0);
  EXPECT_GT(s.pacing_rate_bps(), 10e6);
}

TEST(GccReceiver, ConvergesTowardIncomingRateUnderOveruse) {
  GccReceiver rx(20e6);
  // Feed a 2 Mbps flow whose arrival times show growing queueing: the
  // REMB should fall toward ~0.85x the measured incoming rate.
  Time send = 0, arrival = 0;
  for (int i = 0; i < 400; ++i) {
    send += 6 * kMs;
    arrival = send + static_cast<Time>(i) * 1200;  // steep delay ramp
    rx.on_packet(send, arrival, 1500);
  }
  EXPECT_LT(rx.remb_bps(), 20e6);
}

}  // namespace
}  // namespace livenet::transport
