#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "livenet/csv.h"
#include "livenet/defaults.h"
#include "livenet/report.h"
#include "util/hash_seed.h"

// Golden-file bit-reproducibility: a fixed-seed scenario (workload +
// injected faults) must emit byte-identical CSVs across refactors of
// the data plane, event loop, and network internals. The golden files
// were generated from the pre-zero-copy tree; any diff here means a
// behavioural change, not just a performance one.
//
// Regenerate (only when a change is *intentionally* behavioural):
//   LIVENET_REGEN_GOLDEN=1 ./test_golden_csv
namespace livenet {
namespace {

std::string golden_dir() {
  // Anchor on the source tree so the test works from any build dir.
  std::string file = __FILE__;
  const auto slash = file.find_last_of('/');
  return file.substr(0, slash) + "/golden";
}

ScenarioResult golden_run(std::uint64_t seed, double trace_sample = 0.0) {
  reset_telemetry();  // per-run isolation of the process-wide sinks
  SystemConfig sys_cfg = paper_system_config(seed);
  sys_cfg.countries = 2;
  sys_cfg.nodes_per_country = 3;
  ScenarioConfig scn;
  scn.duration = 40 * kSec;
  scn.day_length = 20 * kSec;
  scn.broadcasts = 3;
  scn.viewer_rate_peak = 1.0;
  scn.mean_view_time = 10 * kSec;
  scn.seed = seed;
  scn.trace_sample = trace_sample;
  // Chaos so faults.csv (and the recovery machinery) is covered too.
  scn.faults.seed = seed + 1;
  scn.faults.link_flaps_per_min = 2.0;
  scn.faults.degrades_per_min = 1.0;
  scn.faults.node_crashes_per_min = 0.5;
  sim::FaultSpec scripted;
  scripted.kind = sim::FaultKind::kLinkFlap;
  scripted.at = 12 * kSec;
  scripted.duration = 2 * kSec;
  scripted.a = 0;
  scripted.b = 1;
  scn.faults.scripted.push_back(scripted);
  LiveNetSystem system(sys_cfg);
  ScenarioRunner runner(system, scn);
  return runner.run();
}

std::string all_csv(const ScenarioResult& r) {
  std::ostringstream os;
  os << "# sessions\n";
  write_sessions_csv(r, os);
  os << "# views\n";
  write_views_csv(r, os);
  os << "# path_requests\n";
  write_path_requests_csv(r, os);
  os << "# timeline\n";
  write_timeline_csv(r, os);
  os << "# faults\n";
  write_faults_csv(r, os);
  return os.str();
}

void check_golden(std::uint64_t seed, double trace_sample = 0.0) {
  const std::string path =
      golden_dir() + "/scenario_seed" + std::to_string(seed) + ".csv";
  const std::string actual = all_csv(golden_run(seed, trace_sample));
  if (std::getenv("LIVENET_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    GTEST_SKIP() << "regenerated " << path;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " (run with LIVENET_REGEN_GOLDEN=1 to create)";
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string expected = buf.str();
  ASSERT_FALSE(expected.empty());
  // Byte-for-byte; on mismatch print a small window around the first
  // differing byte rather than two multi-hundred-KB blobs.
  if (actual != expected) {
    std::size_t i = 0;
    const std::size_t n = std::min(actual.size(), expected.size());
    while (i < n && actual[i] == expected[i]) ++i;
    const std::size_t from = i > 120 ? i - 120 : 0;
    FAIL() << "CSV output diverges from golden at byte " << i
           << " (actual " << actual.size() << " B, golden "
           << expected.size() << " B)\n--- golden ---\n"
           << expected.substr(from, 240) << "\n--- actual ---\n"
           << actual.substr(from, 240);
  }
}

TEST(GoldenCsv, Seed101BitIdentical) { check_golden(101); }
TEST(GoldenCsv, Seed202BitIdentical) { check_golden(202); }

// Tracing must be observation-only: with every packet stamped and the
// whole run recorded, the CSVs must still match the same golden files
// byte for byte (the sampler uses no RNG and nothing in the data plane
// reads a trace_id to make a decision).
TEST(GoldenCsv, Seed101BitIdenticalWithFullTracing) {
  if (std::getenv("LIVENET_REGEN_GOLDEN") != nullptr) {
    GTEST_SKIP() << "regen handled by the untraced tests";
  }
  check_golden(101, /*trace_sample=*/1.0);
}
TEST(GoldenCsv, Seed202BitIdenticalWithFullTracing) {
  if (std::getenv("LIVENET_REGEN_GOLDEN") != nullptr) {
    GTEST_SKIP() << "regen handled by the untraced tests";
  }
  check_golden(202, /*trace_sample=*/1.0);
}

// Determinism audit: re-run the same scenario with the node-local hash
// maps' bucket layout perturbed (SeededHash, see util/hash_seed.h) and
// demand the same golden bytes. Any behaviour that leaks unordered_map
// iteration order — a fan-out whose same-tick event order depends on
// bucket order, a sweep that releases streams in hash order — shows up
// here as a golden diff, which libstdc++'s deterministic std::hash
// would otherwise hide forever. (Maps whose order deliberately feeds
// same-tick event creation, like the FIB subscriber sets, stay on
// std::hash and are excluded from the perturbation by construction.)
struct HashSeedGuard {
  explicit HashSeedGuard(std::size_t seed) { set_hash_seed(seed); }
  ~HashSeedGuard() { set_hash_seed(0); }
};

TEST(GoldenCsv, Seed101BitIdenticalUnderPerturbedHashSeed) {
  if (std::getenv("LIVENET_REGEN_GOLDEN") != nullptr) {
    GTEST_SKIP() << "regen handled by the untraced tests";
  }
  HashSeedGuard guard(0x5EEDF00Dull);
  check_golden(101);
}

TEST(GoldenCsv, Seed202BitIdenticalUnderPerturbedHashSeed) {
  if (std::getenv("LIVENET_REGEN_GOLDEN") != nullptr) {
    GTEST_SKIP() << "regen handled by the untraced tests";
  }
  HashSeedGuard guard(0xC0FFEEull);
  check_golden(202);
}

}  // namespace
}  // namespace livenet
