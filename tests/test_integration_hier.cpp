#include <gtest/gtest.h>

#include "client/broadcaster.h"
#include "client/viewer.h"
#include "livenet/system.h"

// End-to-end Hier baseline: broadcaster -> L1 -> L2 -> center -> L2 ->
// L1 -> viewer, with the VDN-style controller mapping L1s to L2s.
namespace livenet {
namespace {

SystemConfig small_system() {
  SystemConfig cfg;
  cfg.countries = 2;
  cfg.nodes_per_country = 3;  // 1 backbone (relay-only) + 2 edges each
  cfg.dns_candidates = 1;     // deterministic nearest-edge mapping
  cfg.seed = 4321;
  return cfg;
}

client::BroadcasterConfig one_version() {
  client::BroadcasterConfig bc;
  media::VideoSourceConfig vc;
  vc.fps = 25;
  vc.gop_frames = 25;
  vc.bitrate_bps = 1e6;
  bc.versions.push_back(vc);
  return bc;
}

struct World {
  HierSystem system;
  client::ClientMetrics client_metrics;
  client::Broadcaster broadcaster;
  workload::GeoSite bsite;

  World() : system(small_system()),
            broadcaster(&system.network(), 77, one_version()) {
    system.build_once();
    system.start();
    bsite = system.geo().sample_site(0);
    const auto producer = system.attach_client(&broadcaster, bsite);
    broadcaster.start(producer, {1});
    (void)producer;
  }
};

TEST(HierIntegration, ViewerGetsStreamOverFourHops) {
  World w;
  w.system.loop().run_until(4 * kSec);  // upload chain + GoP warmup

  client::Viewer viewer(&w.system.network(), &w.client_metrics);
  const auto vsite = w.system.geo().sample_site(1);
  w.system.attach_client(&viewer, vsite);
  viewer.start_view(w.system.map_client_to_edge(vsite), 1);
  w.system.loop().run_until(14 * kSec);
  viewer.stop_view();
  w.system.loop().run_until(15 * kSec);

  ASSERT_EQ(w.client_metrics.records().size(), 1u);
  const auto& rec = w.client_metrics.records().front();
  EXPECT_FALSE(rec.view_failed);
  EXPECT_GT(rec.frames_displayed, 100u);

  ASSERT_EQ(w.system.sessions().sessions().size(), 1u);
  const auto& sess = w.system.sessions().sessions().front();
  EXPECT_EQ(sess.path_length, 4);  // the fixed hierarchical path
  EXPECT_GT(sess.cdn_delay_ms.count(), 0u);
}

TEST(HierIntegration, UploadReachesCenter) {
  World w;
  w.system.loop().run_until(4 * kSec);
  // The center must carry the stream even with no viewers at all: the
  // hierarchical design pushes every upload to the streaming center.
  auto* center = dynamic_cast<hier::HierNode*>(
      w.system.network().node(w.system.center_id()));
  ASSERT_NE(center, nullptr);
  EXPECT_TRUE(center->fib().contains(1));
}

TEST(HierIntegration, SecondViewerSharesL1Subscription) {
  World w;
  w.system.loop().run_until(4 * kSec);
  const auto vsite = w.system.geo().sample_site(1);
  const auto l1 = w.system.map_client_to_edge(vsite);

  client::Viewer v1(&w.system.network(), &w.client_metrics);
  w.system.attach_client(&v1, vsite);
  v1.start_view(l1, 1);
  w.system.loop().run_until(8 * kSec);

  client::Viewer v2(&w.system.network(), &w.client_metrics);
  w.system.attach_client(&v2, vsite);
  v2.start_view(l1, 1);
  w.system.loop().run_until(12 * kSec);

  const auto& sessions = w.system.sessions().sessions();
  ASSERT_EQ(sessions.size(), 2u);
  EXPECT_FALSE(sessions[0].local_hit);
  EXPECT_TRUE(sessions[1].local_hit);  // L1 already carried the stream
  EXPECT_GT(w.client_metrics.records()[1].frames_displayed, 50u);
}

TEST(HierIntegration, CdnDelayExceedsLiveNetTypicalRange) {
  // Not a comparison test per se, but a sanity check that four
  // store-and-forward full-stack hops cost noticeably more than the
  // sum of raw propagation delays.
  World w;
  w.system.loop().run_until(4 * kSec);
  client::Viewer viewer(&w.system.network(), &w.client_metrics);
  const auto vsite = w.system.geo().sample_site(1);
  w.system.attach_client(&viewer, vsite);
  viewer.start_view(w.system.map_client_to_edge(vsite), 1);
  w.system.loop().run_until(14 * kSec);

  const auto& sess = w.system.sessions().sessions().front();
  ASSERT_GT(sess.cdn_delay_ms.count(), 0u);
  // 5 nodes x 20 ms full-stack + propagation: must be well over 100 ms.
  EXPECT_GT(sess.cdn_delay_ms.mean(), 100.0);
}

}  // namespace
}  // namespace livenet
