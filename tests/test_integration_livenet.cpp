#include <gtest/gtest.h>

#include "client/broadcaster.h"
#include "client/viewer.h"
#include "livenet/system.h"

// End-to-end LiveNet: broadcaster -> producer -> (relay) -> consumer ->
// viewer, with the Streaming Brain computing the paths.
namespace livenet {
namespace {

SystemConfig small_system() {
  SystemConfig cfg;
  cfg.countries = 2;
  cfg.nodes_per_country = 3;  // 1 backbone (relay-only) + 2 edges each
  cfg.dns_candidates = 1;     // deterministic nearest-edge mapping
  cfg.last_resort_nodes = 1;
  cfg.brain.routing_interval = 5 * kSec;
  cfg.overlay_node.report_interval = 2 * kSec;
  cfg.seed = 1234;
  return cfg;
}

client::BroadcasterConfig one_version() {
  client::BroadcasterConfig bc;
  media::VideoSourceConfig vc;
  vc.fps = 25;
  vc.gop_frames = 25;  // 1-second GoPs: fast cache warmup in tests
  vc.bitrate_bps = 1e6;
  bc.versions.push_back(vc);
  return bc;
}

struct World {
  LiveNetSystem system;
  client::ClientMetrics client_metrics;
  client::Broadcaster broadcaster;
  workload::GeoSite bsite;

  explicit World(const SystemConfig& cfg = small_system())
      : system(cfg), broadcaster(&system.network(), 99, one_version()) {
    system.build_once();
    system.start();
    bsite = system.geo().sample_site(0);
    const auto producer = system.attach_client(&broadcaster, bsite);
    broadcaster.start(producer, {1});
    (void)producer;
  }
};

TEST(LiveNetIntegration, ViewerReceivesAndPlaysStream) {
  World w;
  w.system.loop().run_until(6 * kSec);  // routing cycle + GoP warmup

  client::Viewer viewer(&w.system.network(), &w.client_metrics);
  const auto vsite = w.system.geo().sample_site(1);  // other country
  w.system.attach_client(&viewer, vsite);
  viewer.start_view(w.system.map_client_to_edge(vsite), 1);
  w.system.loop().run_until(16 * kSec);
  viewer.stop_view();
  w.system.loop().run_until(17 * kSec);

  ASSERT_EQ(w.client_metrics.records().size(), 1u);
  const auto& rec = w.client_metrics.records().front();
  EXPECT_FALSE(rec.view_failed);
  EXPECT_GT(rec.frames_displayed, 100u);
  ASSERT_NE(rec.startup_delay(), kNever);
  EXPECT_LT(rec.startup_delay(), 2 * kSec);
  EXPECT_GT(rec.streaming_delay_ms.mean(), 300.0);   // >= playback buffer
  EXPECT_LT(rec.streaming_delay_ms.mean(), 2000.0);

  ASSERT_EQ(w.system.sessions().sessions().size(), 1u);
  const auto& sess = w.system.sessions().sessions().front();
  EXPECT_GE(sess.path_length, 1);
  EXPECT_LE(sess.path_length, 3);
  EXPECT_GT(sess.cdn_delay_ms.count(), 0u);
  EXPECT_FALSE(sess.local_hit);
  EXPECT_NE(sess.first_packet_delay(), kNever);

  EXPECT_FALSE(w.system.brain().metrics().path_requests.empty());
}

TEST(LiveNetIntegration, SecondViewerOnSameConsumerIsLocalHit) {
  World w;
  w.system.loop().run_until(6 * kSec);

  const auto vsite = w.system.geo().sample_site(1);
  const auto consumer = w.system.map_client_to_edge(vsite);

  client::Viewer v1(&w.system.network(), &w.client_metrics);
  w.system.attach_client(&v1, vsite);
  v1.start_view(consumer, 1);
  w.system.loop().run_until(9 * kSec);

  client::Viewer v2(&w.system.network(), &w.client_metrics);
  w.system.attach_client(&v2, vsite);
  v2.start_view(consumer, 1);
  w.system.loop().run_until(12 * kSec);

  const auto& sessions = w.system.sessions().sessions();
  ASSERT_EQ(sessions.size(), 2u);
  EXPECT_FALSE(sessions[0].local_hit);
  EXPECT_TRUE(sessions[1].local_hit);
  // The local hit starts from the GoP cache: startup must be fast.
  const auto& rec2 = w.client_metrics.records()[1];
  ASSERT_NE(rec2.startup_delay(), kNever);
  EXPECT_LT(rec2.startup_delay(), 1 * kSec);
}

TEST(LiveNetIntegration, ViewerAtProducerNodeGetsZeroLengthPath) {
  World w;
  w.system.loop().run_until(6 * kSec);

  client::Viewer viewer(&w.system.network(), &w.client_metrics);
  // Same site as the broadcaster: DNS maps to the same node.
  w.system.attach_client(&viewer, w.bsite);
  viewer.start_view(w.system.map_client_to_edge(w.bsite), 1);
  w.system.loop().run_until(10 * kSec);

  ASSERT_EQ(w.system.sessions().sessions().size(), 1u);
  const auto& sess = w.system.sessions().sessions().front();
  EXPECT_EQ(sess.path_length, 0);
  EXPECT_TRUE(sess.local_hit);  // producer carries its own stream
  EXPECT_GT(w.client_metrics.records().front().frames_displayed, 50u);
}

TEST(LiveNetIntegration, StreamReleasedAfterViewersLeave) {
  World w;
  w.system.loop().run_until(6 * kSec);

  const auto vsite = w.system.geo().sample_site(1);
  const auto consumer_id = w.system.map_client_to_edge(vsite);
  client::Viewer viewer(&w.system.network(), &w.client_metrics);
  w.system.attach_client(&viewer, vsite);
  viewer.start_view(consumer_id, 1);
  w.system.loop().run_until(10 * kSec);
  EXPECT_TRUE(w.system.node(consumer_id).fib().contains(1));

  viewer.stop_view();
  // Past the unsubscribe linger (5 s default).
  w.system.loop().run_until(20 * kSec);
  EXPECT_FALSE(w.system.node(consumer_id).fib().contains(1));
}

TEST(LiveNetIntegration, PublishStopDeregistersFromBrain) {
  World w;
  w.system.loop().run_until(6 * kSec);
  EXPECT_NE(w.system.brain().sib().producer_of(1), sim::kNoNode);
  w.broadcaster.stop();
  w.system.loop().run_until(8 * kSec);
  EXPECT_EQ(w.system.brain().sib().producer_of(1), sim::kNoNode);
}

TEST(LiveNetIntegration, UnknownStreamFailsView) {
  World w;
  w.system.loop().run_until(6 * kSec);
  client::Viewer viewer(&w.system.network(), &w.client_metrics);
  const auto vsite = w.system.geo().sample_site(1);
  w.system.attach_client(&viewer, vsite);
  viewer.start_view(w.system.map_client_to_edge(vsite), 777);
  w.system.loop().run_until(8 * kSec);
  ASSERT_EQ(w.client_metrics.records().size(), 1u);
  EXPECT_TRUE(w.client_metrics.records().front().view_failed);
}

TEST(LiveNetIntegration, DelayHeaderExtensionApproximatesTrueDelay) {
  World w;
  w.system.loop().run_until(6 * kSec);
  client::Viewer viewer(&w.system.network(), &w.client_metrics);
  const auto vsite = w.system.geo().sample_site(1);
  w.system.attach_client(&viewer, vsite);
  viewer.start_view(w.system.map_client_to_edge(vsite), 1);
  w.system.loop().run_until(16 * kSec);

  const auto& rec = w.client_metrics.records().front();
  ASSERT_GT(rec.header_ext_delay_ms.count(), 2u);
  // The header-extension estimate should land within ~40% of the
  // clock-measured streaming delay (it omits some queueing terms).
  const double ratio =
      rec.header_ext_delay_ms.mean() / rec.streaming_delay_ms.mean();
  EXPECT_GT(ratio, 0.4);
  EXPECT_LT(ratio, 1.6);
}

}  // namespace
}  // namespace livenet
