#include <gtest/gtest.h>

#include <vector>

#include "media/jitter_framer.h"
#include "media/packetizer.h"
#include "util/rng.h"

namespace livenet::media {
namespace {

std::vector<media::RtpPacketMut> make_frames(int n_frames,
                                                    std::size_t bytes) {
  Packetizer p(1);
  std::vector<media::RtpPacketMut> out;
  for (int i = 1; i <= n_frames; ++i) {
    Frame f;
    f.stream_id = 1;
    f.frame_id = static_cast<std::uint64_t>(i);
    f.gop_id = 1;
    f.type = i == 1 ? FrameType::kI : FrameType::kP;
    f.size_bytes = bytes;
    f.capture_time = static_cast<Time>(i) * 40 * kMs;
    for (auto& pkt : p.packetize(f)) out.push_back(pkt);
  }
  return out;
}

TEST(JitterFramer, InOrderStreamEmitsEverything) {
  std::vector<std::uint64_t> emitted;
  JitterFramer jf([&](const Frame& f) { emitted.push_back(f.frame_id); });
  for (const auto& pkt : make_frames(10, 3000)) {
    jf.on_packet(*pkt, 0);
  }
  ASSERT_EQ(emitted.size(), 10u);
  for (std::size_t i = 0; i < emitted.size(); ++i) {
    EXPECT_EQ(emitted[i], i + 1);
  }
  EXPECT_EQ(jf.frames_dropped(), 0u);
}

TEST(JitterFramer, FrameInterleavingReassembles) {
  // Fragments of frames 1 and 2 fully interleaved: both must complete.
  std::vector<std::uint64_t> emitted;
  JitterFramer jf([&](const Frame& f) { emitted.push_back(f.frame_id); });
  const auto pkts = make_frames(2, 3000);  // 3 frags per frame
  // Order: f1.0, f2.0, f1.1, f2.1, f1.2, f2.2
  const std::size_t order[] = {0, 3, 1, 4, 2, 5};
  for (const auto idx : order) jf.on_packet(*pkts[idx], 0);
  EXPECT_EQ(emitted, (std::vector<std::uint64_t>{1, 2}));
}

TEST(JitterFramer, LateFragmentStillCompletesFrame) {
  // Frame 1 missing a fragment; frames 2..4 complete meanwhile; the
  // late fragment arrives before the deadline: all emitted in order.
  std::vector<std::uint64_t> emitted;
  JitterFramer jf([&](const Frame& f) { emitted.push_back(f.frame_id); });
  const auto pkts = make_frames(4, 3000);
  for (const auto& pkt : pkts) {
    if (pkt->frame_id() == 1 && pkt->frag_index() == 1) continue;  // delay it
    jf.on_packet(*pkt, 10 * kMs);
  }
  EXPECT_TRUE(emitted.empty());  // in-order: nothing may pass frame 1
  jf.on_packet(*pkts[1], 200 * kMs);  // the late RTX lands
  EXPECT_EQ(emitted, (std::vector<std::uint64_t>{1, 2, 3, 4}));
  EXPECT_EQ(jf.frames_dropped(), 0u);
}

TEST(JitterFramer, HeadSkippedAfterDeadline) {
  std::vector<std::uint64_t> emitted;
  JitterFramer jf([&](const Frame& f) { emitted.push_back(f.frame_id); });
  const auto pkts = make_frames(3, 3000);
  for (const auto& pkt : pkts) {
    if (pkt->frame_id() == 1 && pkt->frag_index() == 1) continue;  // lost
    jf.on_packet(*pkt, 0);
  }
  EXPECT_TRUE(emitted.empty());
  jf.flush(1 * kSec);  // past the assembly deadline
  EXPECT_EQ(emitted, (std::vector<std::uint64_t>{2, 3}));
  EXPECT_EQ(jf.frames_dropped(), 1u);
}

TEST(JitterFramer, AudioBypassesOrdering) {
  std::vector<std::uint64_t> video, audio;
  JitterFramer jf([&](const Frame& f) {
    (f.is_audio() ? audio : video).push_back(f.frame_id);
  });
  const auto pkts = make_frames(2, 3000);
  jf.on_packet(*pkts[0], 0);  // incomplete video frame 1
  media::RtpBody ab;
  ab.stream_id = 1;
  ab.frame_id = 7;
  ab.frame_type = FrameType::kAudio;
  ab.payload_bytes = 160;
  auto a = RtpPacket::make(std::move(ab));
  jf.on_packet(*a, 0);
  EXPECT_EQ(audio, (std::vector<std::uint64_t>{7}));  // immediate
  EXPECT_TRUE(video.empty());
}

TEST(JitterFramer, DuplicateOfEmittedFrameIgnored) {
  std::vector<std::uint64_t> emitted;
  JitterFramer jf([&](const Frame& f) { emitted.push_back(f.frame_id); });
  const auto pkts = make_frames(1, 2000);
  for (const auto& pkt : pkts) jf.on_packet(*pkt, 0);
  ASSERT_EQ(emitted.size(), 1u);
  for (const auto& pkt : pkts) jf.on_packet(*pkt, 0);  // replay
  EXPECT_EQ(emitted.size(), 1u);
}

TEST(JitterFramer, RandomArrivalOrderEmitsAllInOrder) {
  Rng rng(42);
  std::vector<std::uint64_t> emitted;
  JitterFramer jf([&](const Frame& f) { emitted.push_back(f.frame_id); });
  auto pkts = make_frames(30, 4000);
  // Bounded shuffle (reorder window ~8 packets).
  for (std::size_t i = 0; i + 1 < pkts.size(); ++i) {
    const std::size_t j = i + rng.index(9);
    if (j < pkts.size()) std::swap(pkts[i], pkts[j]);
  }
  Time t = 0;
  for (const auto& pkt : pkts) jf.on_packet(*pkt, t += kMs);
  jf.flush(10 * kSec);
  EXPECT_EQ(emitted.size(), 30u);
  EXPECT_TRUE(std::is_sorted(emitted.begin(), emitted.end()));
}

TEST(JitterFramer, PendingBoundEnforced) {
  JitterFramer::Config cfg;
  cfg.max_pending_frames = 8;
  cfg.assembly_deadline = 100 * kSec;  // never expire by time
  int emitted = 0;
  JitterFramer jf([&](const Frame&) { ++emitted; }, cfg);
  // 100 incomplete frames (first fragment only, 3 frags expected).
  const auto pkts = make_frames(100, 3000);
  for (const auto& pkt : pkts) {
    if (pkt->frag_index() == 0) jf.on_packet(*pkt, 0);
  }
  EXPECT_GT(jf.frames_dropped(), 80u);
  EXPECT_EQ(emitted, 0);
}

}  // namespace
}  // namespace livenet::media
