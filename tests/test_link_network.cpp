#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "sim/link.h"
#include "sim/network.h"

namespace livenet::sim {
namespace {

class Probe final : public SimNode {
 public:
  void on_message(NodeId from, const MessagePtr& msg) override {
    arrivals.emplace_back(from, msg);
  }
  std::vector<std::pair<NodeId, MessagePtr>> arrivals;
};

class Blob final : public Message {
 public:
  explicit Blob(std::size_t n) : n_(n) {}
  std::size_t wire_size() const override { return n_; }
  std::string describe() const override { return "blob"; }

 private:
  std::size_t n_;
};

LinkConfig fast_link() {
  LinkConfig lc;
  lc.propagation_delay = 10 * kMs;
  lc.bandwidth_bps = 8e6;  // 1 byte/us
  lc.loss_rate = 0.0;
  lc.jitter_stddev = 0;
  return lc;
}

TEST(Link, DeliveryTimeIsSerializationPlusPropagation) {
  EventLoop loop;
  Link link(&loop, 0, 1, fast_link(), Rng(1));
  const SendResult r = link.send(1000);  // 1000 us serialization
  ASSERT_TRUE(r.delivered);
  EXPECT_EQ(r.arrival_time, 1000 + 10 * kMs);
}

TEST(Link, BackToBackPacketsQueueBehindEachOther) {
  EventLoop loop;
  Link link(&loop, 0, 1, fast_link(), Rng(1));
  const SendResult a = link.send(1000);
  const SendResult b = link.send(1000);
  ASSERT_TRUE(a.delivered);
  ASSERT_TRUE(b.delivered);
  EXPECT_EQ(b.arrival_time - a.arrival_time, 1000);  // serialization gap
}

TEST(Link, LossRateApproximatelyRespected) {
  EventLoop loop;
  LinkConfig lc = fast_link();
  lc.loss_rate = 0.1;
  Link link(&loop, 0, 1, lc, Rng(99));
  int lost = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (!link.send(100).delivered) ++lost;
  }
  EXPECT_NEAR(static_cast<double>(lost) / n, 0.1, 0.01);
  EXPECT_EQ(link.stats().packets_lost, static_cast<std::uint64_t>(lost));
}

TEST(Link, QueueOverflowDropsTail) {
  EventLoop loop;
  LinkConfig lc = fast_link();
  lc.queue_limit_bytes = 5000;
  Link link(&loop, 0, 1, lc, Rng(1));
  int dropped = 0;
  for (int i = 0; i < 100; ++i) {
    if (!link.send(1000).delivered) ++dropped;
  }
  EXPECT_GT(dropped, 80);  // only ~6 packets fit before the cap
  EXPECT_EQ(link.stats().packets_dropped,
            static_cast<std::uint64_t>(dropped));
}

TEST(Link, UtilizationReflectsLoad) {
  EventLoop loop;
  LinkConfig lc = fast_link();  // 1 MB/s capacity
  Link link(&loop, 0, 1, lc, Rng(1));
  // Send 0.5 MB in the first second -> ~50% bin utilization, halved by
  // the EWMA right after the bin closes.
  for (int i = 0; i < 500; ++i) link.send(1000);
  loop.schedule_at(1 * kSec + 100 * kMs, [] {});
  loop.run();
  EXPECT_NEAR(link.utilization(), 0.25, 0.05);
  EXPECT_LE(link.utilization(), 1.0);
}

TEST(Link, UtilizationDecaysWhenIdle) {
  EventLoop loop;
  Link link(&loop, 0, 1, fast_link(), Rng(1));
  for (int i = 0; i < 500; ++i) link.send(1000);
  loop.schedule_at(60 * kSec, [] {});
  loop.run();
  EXPECT_NEAR(link.utilization(), 0.0, 1e-9);
}

TEST(Network, DeliversToReceiverWithSource) {
  EventLoop loop;
  Network net(&loop);
  Probe a, b;
  const NodeId ida = net.add_node(&a);
  const NodeId idb = net.add_node(&b);
  net.add_bidi_link(ida, idb, fast_link());
  EXPECT_TRUE(net.send(ida, idb, sim::make_message<Blob>(100)));
  loop.run();
  ASSERT_EQ(b.arrivals.size(), 1u);
  EXPECT_EQ(b.arrivals[0].first, ida);
  EXPECT_TRUE(a.arrivals.empty());
}

TEST(Network, SendWithoutLinkFails) {
  EventLoop loop;
  Network net(&loop);
  Probe a, b;
  const NodeId ida = net.add_node(&a);
  const NodeId idb = net.add_node(&b);
  EXPECT_FALSE(net.send(ida, idb, sim::make_message<Blob>(100)));
}

TEST(Network, NeighborsTracksOutgoingLinks) {
  EventLoop loop;
  Network net(&loop);
  Probe n0, n1, n2;
  net.add_node(&n0);
  net.add_node(&n1);
  net.add_node(&n2);
  net.add_link(0, 1, fast_link());
  net.add_link(0, 2, fast_link());
  const auto nb = net.neighbors(0);
  EXPECT_EQ(nb.size(), 2u);
  EXPECT_TRUE(net.link(0, 1) != nullptr);
  EXPECT_TRUE(net.link(1, 0) == nullptr);
}

TEST(Network, ReplacingLinkKeepsSingleAdjacencyEntry) {
  EventLoop loop;
  Network net(&loop);
  Probe n0, n1;
  net.add_node(&n0);
  net.add_node(&n1);
  net.add_link(0, 1, fast_link());
  net.add_link(0, 1, fast_link());
  EXPECT_EQ(net.neighbors(0).size(), 1u);
}

}  // namespace
}  // namespace livenet::sim
