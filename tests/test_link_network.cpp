#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "sim/link.h"
#include "sim/network.h"
#include "telemetry/metrics.h"

namespace livenet::sim {
namespace {

class Probe final : public SimNode {
 public:
  void on_message(NodeId from, const MessagePtr& msg) override {
    arrivals.emplace_back(from, msg);
  }
  std::vector<std::pair<NodeId, MessagePtr>> arrivals;
};

class Blob final : public Message {
 public:
  explicit Blob(std::size_t n) : n_(n) {}
  std::size_t wire_size() const override { return n_; }
  std::string describe() const override { return "blob"; }

 private:
  std::size_t n_;
};

LinkConfig fast_link() {
  LinkConfig lc;
  lc.propagation_delay = 10 * kMs;
  lc.bandwidth_bps = 8e6;  // 1 byte/us
  lc.loss_rate = 0.0;
  lc.jitter_stddev = 0;
  return lc;
}

TEST(Link, DeliveryTimeIsSerializationPlusPropagation) {
  EventLoop loop;
  Link link(&loop, 0, 1, fast_link(), Rng(1));
  const SendResult r = link.send(1000);  // 1000 us serialization
  ASSERT_TRUE(r.delivered);
  EXPECT_EQ(r.arrival_time, 1000 + 10 * kMs);
}

TEST(Link, BackToBackPacketsQueueBehindEachOther) {
  EventLoop loop;
  Link link(&loop, 0, 1, fast_link(), Rng(1));
  const SendResult a = link.send(1000);
  const SendResult b = link.send(1000);
  ASSERT_TRUE(a.delivered);
  ASSERT_TRUE(b.delivered);
  EXPECT_EQ(b.arrival_time - a.arrival_time, 1000);  // serialization gap
}

TEST(Link, LossRateApproximatelyRespected) {
  EventLoop loop;
  LinkConfig lc = fast_link();
  lc.loss_rate = 0.1;
  Link link(&loop, 0, 1, lc, Rng(99));
  int lost = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (!link.send(100).delivered) ++lost;
  }
  EXPECT_NEAR(static_cast<double>(lost) / n, 0.1, 0.01);
  EXPECT_EQ(link.stats().packets_lost, static_cast<std::uint64_t>(lost));
}

TEST(Link, QueueOverflowDropsTail) {
  EventLoop loop;
  LinkConfig lc = fast_link();
  lc.queue_limit_bytes = 5000;
  Link link(&loop, 0, 1, lc, Rng(1));
  int dropped = 0;
  for (int i = 0; i < 100; ++i) {
    if (!link.send(1000).delivered) ++dropped;
  }
  EXPECT_GT(dropped, 80);  // only ~6 packets fit before the cap
  EXPECT_EQ(link.stats().packets_dropped,
            static_cast<std::uint64_t>(dropped));
}

TEST(Link, UtilizationReflectsLoad) {
  EventLoop loop;
  LinkConfig lc = fast_link();  // 1 MB/s capacity
  Link link(&loop, 0, 1, lc, Rng(1));
  // Send 0.5 MB in the first second -> ~50% bin utilization, halved by
  // the EWMA right after the bin closes.
  for (int i = 0; i < 500; ++i) link.send(1000);
  loop.schedule_at(1 * kSec + 100 * kMs, [] {});
  loop.run();
  EXPECT_NEAR(link.utilization(), 0.25, 0.05);
  EXPECT_LE(link.utilization(), 1.0);
}

TEST(Link, UtilizationDecaysWhenIdle) {
  EventLoop loop;
  Link link(&loop, 0, 1, fast_link(), Rng(1));
  for (int i = 0; i < 500; ++i) link.send(1000);
  loop.schedule_at(60 * kSec, [] {});
  loop.run();
  EXPECT_NEAR(link.utilization(), 0.0, 1e-9);
}

TEST(Network, DeliversToReceiverWithSource) {
  EventLoop loop;
  Network net(&loop);
  Probe a, b;
  const NodeId ida = net.add_node(&a);
  const NodeId idb = net.add_node(&b);
  net.add_bidi_link(ida, idb, fast_link());
  EXPECT_TRUE(net.send(ida, idb, sim::make_message<Blob>(100)));
  loop.run();
  ASSERT_EQ(b.arrivals.size(), 1u);
  EXPECT_EQ(b.arrivals[0].first, ida);
  EXPECT_TRUE(a.arrivals.empty());
}

TEST(Network, SendWithoutLinkFails) {
  EventLoop loop;
  Network net(&loop);
  Probe a, b;
  const NodeId ida = net.add_node(&a);
  const NodeId idb = net.add_node(&b);
  EXPECT_FALSE(net.send(ida, idb, sim::make_message<Blob>(100)));
}

TEST(Network, NeighborsTracksOutgoingLinks) {
  EventLoop loop;
  Network net(&loop);
  Probe n0, n1, n2;
  net.add_node(&n0);
  net.add_node(&n1);
  net.add_node(&n2);
  net.add_link(0, 1, fast_link());
  net.add_link(0, 2, fast_link());
  const auto nb = net.neighbors(0);
  EXPECT_EQ(nb.size(), 2u);
  EXPECT_TRUE(net.link(0, 1) != nullptr);
  EXPECT_TRUE(net.link(1, 0) == nullptr);
}

TEST(Network, ReplacingLinkKeepsSingleAdjacencyEntry) {
  EventLoop loop;
  Network net(&loop);
  Probe n0, n1;
  net.add_node(&n0);
  net.add_node(&n1);
  net.add_link(0, 1, fast_link());
  net.add_link(0, 1, fast_link());
  EXPECT_EQ(net.neighbors(0).size(), 1u);
}

TEST(Network, NegativeNodeIdsRejectedLoudly) {
  EventLoop loop;
  Network net(&loop);
  Probe n0;
  net.add_node(&n0);
  EXPECT_EQ(net.add_link(-1, 0, fast_link()), nullptr);
  EXPECT_EQ(net.add_link(0, -1, fast_link()), nullptr);
  EXPECT_EQ(net.neighbors(0).size(), 0u);
  EXPECT_FALSE(net.send(0, -1, sim::make_message<Blob>(100)));
}

TEST(Network, LinkAddedAfterFreezeIsRoutable) {
  EventLoop loop;
  Network net(&loop);
  Probe a, b, c;
  net.add_node(&a);
  net.add_node(&b);
  net.add_node(&c);
  net.add_link(0, 1, fast_link());
  net.freeze_topology();
  // A frozen pair gains a link after the freeze: the dense matrix path
  // (send's fast path, with its sync assert) must find it.
  ASSERT_NE(net.add_link(0, 2, fast_link()), nullptr);
  EXPECT_NE(net.link(0, 2), nullptr);
  EXPECT_TRUE(net.send(0, 2, sim::make_message<Blob>(100)));
  loop.run();
  ASSERT_EQ(c.arrivals.size(), 1u);
  // A node registered after the freeze falls back to the sorted rows.
  Probe d;
  const NodeId idd = net.add_node(&d);
  ASSERT_NE(net.add_link(0, idd, fast_link()), nullptr);
  EXPECT_TRUE(net.send(0, idd, sim::make_message<Blob>(100)));
  loop.run();
  EXPECT_EQ(d.arrivals.size(), 1u);
}

// ------------------------------------------------------ batched delivery

/// Records upcall grouping alongside per-message arrival times.
class BatchProbe final : public SimNode {
 public:
  explicit BatchProbe(EventLoop* loop) : loop_(loop) {}
  void on_message(NodeId from, const MessagePtr& msg) override {
    (void)msg;
    arrivals.emplace_back(loop_->now(), from);
  }
  void on_message_batch(NodeId from, const MessagePtr* msgs,
                        std::size_t n) override {
    batch_sizes.push_back(n);
    SimNode::on_message_batch(from, msgs, n);
  }

  std::vector<std::pair<Time, NodeId>> arrivals;
  std::vector<std::size_t> batch_sizes;

 private:
  EventLoop* loop_;
};

LinkConfig instant_link() {
  LinkConfig lc;
  lc.propagation_delay = 10 * kMs;
  lc.bandwidth_bps = 8e13;  // sub-us serialization: truncates to 0
  lc.loss_rate = 0.0;
  lc.jitter_stddev = 0;
  return lc;
}

TEST(Network, SameInstantBurstGroupsIntoOneUpcall) {
  EventLoop loop;
  Network net(&loop);
  Probe a;
  BatchProbe b(&loop);
  net.add_node(&a);
  net.add_node(&b);
  net.add_link(0, 1, instant_link());
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(net.send(0, 1, sim::make_message<Blob>(100)));
  }
  loop.run();
  ASSERT_EQ(b.arrivals.size(), 5u);
  for (const auto& [t, from] : b.arrivals) EXPECT_EQ(t, 10 * kMs);
  ASSERT_EQ(b.batch_sizes.size(), 1u);
  EXPECT_EQ(b.batch_sizes[0], 5u);
  EXPECT_EQ(net.batch_upcalls(), 1u);
  EXPECT_EQ(net.batch_packets(), 5u);
}

TEST(Network, QuantumZeroDegeneratesToPerPacketUpcalls) {
  EventLoop loop;
  Network net(&loop);
  Probe a;
  BatchProbe b(&loop);
  net.add_node(&a);
  net.add_node(&b);
  net.add_link(0, 1, instant_link());
  net.set_delivery_batch(DeliveryBatch{0, 1});
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(net.send(0, 1, sim::make_message<Blob>(100)));
  }
  loop.run();
  // Same arrivals at the same instants, one callback each.
  ASSERT_EQ(b.arrivals.size(), 5u);
  for (const auto& [t, from] : b.arrivals) EXPECT_EQ(t, 10 * kMs);
  EXPECT_EQ(b.batch_sizes, std::vector<std::size_t>(5, 1));
  EXPECT_EQ(net.batch_upcalls(), 5u);
}

TEST(Network, MaxPacketsBudgetSplitsTheBurst) {
  EventLoop loop;
  Network net(&loop);
  Probe a;
  BatchProbe b(&loop);
  net.add_node(&a);
  net.add_node(&b);
  net.add_link(0, 1, instant_link());
  net.set_delivery_batch(DeliveryBatch{1 * kMs, 2});
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(net.send(0, 1, sim::make_message<Blob>(100)));
  }
  loop.run();
  ASSERT_EQ(b.arrivals.size(), 5u);
  for (const auto& [t, from] : b.arrivals) EXPECT_EQ(t, 10 * kMs);
  EXPECT_EQ(b.batch_sizes, (std::vector<std::size_t>{2, 2, 1}));
}

TEST(Network, EarlierArrivalReschedulesPendingFlush) {
  EventLoop loop;
  Network net(&loop);
  Probe a;
  BatchProbe b(&loop);
  net.add_node(&a);
  net.add_node(&b);
  Link* l = net.add_link(0, 1, instant_link());
  // First packet delayed by a degradation fault; the fault clears
  // before the second send, so the later send arrives *earlier* — the
  // inbox flush must move to the new head.
  l->set_extra_delay(5 * kMs);
  EXPECT_TRUE(net.send(0, 1, sim::make_message<Blob>(100)));  // t = 15 ms
  l->set_extra_delay(0);
  EXPECT_TRUE(net.send(0, 1, sim::make_message<Blob>(200)));  // t = 10 ms
  loop.run();
  ASSERT_EQ(b.arrivals.size(), 2u);
  EXPECT_EQ(b.arrivals[0].first, 10 * kMs);
  EXPECT_EQ(b.arrivals[1].first, 15 * kMs);
  EXPECT_EQ(b.batch_sizes, (std::vector<std::size_t>{1, 1}));
}

TEST(Network, MidBurstLinkFlapCountsDropsOncePerPacket) {
  // The same send sequence with a link flap in the middle must produce
  // identical drop counts and delivery times whatever the delivery
  // quantum: drops are accounted at send time, exactly once, and
  // batching is callback granularity only.
  auto run = [](const DeliveryBatch& batch) {
    EventLoop loop;
    Network net(&loop);
    Probe a;
    BatchProbe b(&loop);
    net.add_node(&a);
    net.add_node(&b);
    Link* l = net.add_link(0, 1, instant_link());
    net.set_delivery_batch(batch);
    const std::uint64_t down_before =
        telemetry::handles().link_drops_down->value();
    for (int i = 0; i < 5; ++i) net.send(0, 1, sim::make_message<Blob>(100));
    l->set_down(true);  // flap strikes mid-burst
    for (int i = 0; i < 5; ++i) {
      EXPECT_FALSE(net.send(0, 1, sim::make_message<Blob>(100)));
    }
    l->set_down(false);
    for (int i = 0; i < 5; ++i) net.send(0, 1, sim::make_message<Blob>(100));
    loop.run();
    const std::uint64_t down_drops =
        telemetry::handles().link_drops_down->value() - down_before;
    return std::make_pair(b.arrivals, down_drops);
  };
  const auto batched = run(DeliveryBatch{});          // default: on
  const auto per_packet = run(DeliveryBatch{0, 1});   // legacy granularity
  EXPECT_EQ(batched.second, 5u);
  EXPECT_EQ(per_packet.second, 5u);
  EXPECT_EQ(batched.first, per_packet.first);
  ASSERT_EQ(batched.first.size(), 10u);
}

}  // namespace
}  // namespace livenet::sim
