#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "client/broadcaster.h"
#include "client/viewer.h"
#include "livenet/csv.h"
#include "livenet/defaults.h"
#include "livenet/report.h"
#include "livenet/system.h"
#include "media/fec.h"
#include "media/rtp.h"
#include "overlay/packet_cache.h"
#include "sim/event_loop.h"
#include "telemetry/metrics.h"
#include "transport/receive_buffer.h"

// The loss-recovery tier: link-local XOR/parity FEC, the RTT-aware
// re-NACK holdoff, multi-supplier RTX, and the parity hygiene rules
// (parity never cached, never burst to late joiners).
namespace livenet {
namespace {

using media::FecDecoder;
using media::FecGroupEncoder;
using media::RtpBody;
using media::RtpPacket;
using media::RtpPacketMut;
using media::RtpPacketPtr;
using media::Seq;
using media::StreamId;

RtpBody body(StreamId s, Seq seq, std::uint64_t frame_id,
             std::size_t payload = 1100,
             media::FrameType t = media::FrameType::kP) {
  RtpBody b;
  b.stream_id = s;
  b.seq = seq;
  b.frame_id = frame_id;
  b.gop_id = frame_id / 25;
  b.frame_type = t;
  b.payload_bytes = payload;
  b.capture_time = static_cast<Time>(seq) * 10 * kMs;
  b.frag_index = 0;
  b.frag_count = 1;
  return b;
}

RtpPacketMut pkt(StreamId s, Seq seq, std::uint64_t frame_id,
                 std::size_t payload = 1100,
                 media::FrameType t = media::FrameType::kP) {
  return RtpPacket::make(body(s, seq, frame_id, payload, t));
}

// ----------------------------------------------------------- encoder

TEST(FecEncoder, EmitsOneParityPerGroup) {
  FecGroupEncoder enc(4);
  for (Seq q = 10; q < 13; ++q) {
    const auto early = enc.add(body(1, q, 100 + q));
    EXPECT_FALSE(early.has_value());
  }
  auto parity = enc.add(body(1, 13, 113, 1400));
  ASSERT_TRUE(parity.has_value());
  EXPECT_EQ(parity->fec_group_count, 4u);
  EXPECT_EQ(parity->fec_base_seq, 10u);
  EXPECT_EQ(parity->seq, 10u);
  EXPECT_EQ(parity->payload_bytes, 1400u);  // max over the group
  EXPECT_TRUE(RtpPacket::make(std::move(*parity))->is_fec_parity());

  // The next group starts fresh.
  EXPECT_FALSE(enc.add(body(1, 14, 114)).has_value());
}

TEST(FecEncoder, SeqHoleRestartsGroup) {
  FecGroupEncoder enc(3);
  EXPECT_FALSE(enc.add(body(1, 1, 1)).has_value());
  EXPECT_FALSE(enc.add(body(1, 2, 2)).has_value());
  // Hole (seq 3 never forwarded): parity over 1..3 would lie about its
  // coverage, so the group restarts at 5.
  EXPECT_FALSE(enc.add(body(1, 5, 5)).has_value());
  EXPECT_FALSE(enc.add(body(1, 6, 6)).has_value());
  const auto parity = enc.add(body(1, 7, 7));
  ASSERT_TRUE(parity.has_value());
  EXPECT_EQ(parity->fec_base_seq, 5u);
}

// ----------------------------------------------------------- decoder

/// Runs one full group through the encoder, returning the parity packet.
RtpPacketMut encode_group(FecGroupEncoder& enc, StreamId s, Seq base,
                          std::uint32_t k) {
  RtpPacketMut out;
  for (Seq q = base; q < base + k; ++q) {
    auto parity = enc.add(body(s, q, 1000 + q, 1000 + 7 * (q % 3)));
    if (parity) out = RtpPacket::make(std::move(*parity));
  }
  EXPECT_NE(out, nullptr);
  return out;
}

TEST(FecDecoder, ReconstructsSingleLossBitExactly) {
  FecGroupEncoder enc(4);
  FecDecoder dec;
  // First parity only activates the decoder (its group pre-dates the
  // media window and is held, then superseded).
  dec.on_parity(*encode_group(enc, 1, 0, 4));
  ASSERT_TRUE(dec.active());

  RtpPacketMut parity = encode_group(enc, 1, 4, 4);
  for (Seq q = 4; q < 8; ++q) {
    if (q == 6) continue;  // the lost packet
    EXPECT_EQ(dec.on_media(*pkt(1, q, 1000 + q, 1000 + 7 * (q % 3))),
              nullptr);
  }
  RtpPacketMut rec = dec.on_parity(*parity);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->seq, 6u);
  EXPECT_EQ(rec->frame_id(), 1006u);
  EXPECT_EQ(rec->payload_bytes(), 1000u + 7 * (6 % 3));
  EXPECT_EQ(rec->frame_type(), media::FrameType::kP);
  EXPECT_TRUE(rec->fec_recovered);
  EXPECT_EQ(rec->hop_send_time, kNever);  // no GCC sample for this hop
  EXPECT_EQ(dec.reconstructed(), 1u);
}

TEST(FecDecoder, TwoLossesHeldUntilRtxRearms) {
  FecGroupEncoder enc(4);
  FecDecoder dec;
  dec.on_parity(*encode_group(enc, 1, 0, 4));

  RtpPacketMut parity = encode_group(enc, 1, 4, 4);
  dec.on_media(*pkt(1, 4, 1004, 1000 + 7 * (4 % 3)));
  dec.on_media(*pkt(1, 7, 1007, 1000 + 7 * (7 % 3)));
  // Seqs 5 and 6 are both missing: beyond a parity code's power.
  EXPECT_EQ(dec.on_parity(*parity), nullptr);
  EXPECT_EQ(dec.reconstructed(), 0u);

  // An RTX refills seq 5; the held group re-arms to one hole and the
  // decoder hands back seq 6.
  RtpPacketMut rtx = pkt(1, 5, 1005, 1000 + 7 * (5 % 3));
  rtx->is_rtx = true;
  RtpPacketMut rec = dec.on_media(*rtx);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->seq, 6u);
  EXPECT_EQ(dec.reconstructed(), 1u);
}

TEST(FecDecoder, FullyReceivedGroupIsDroppedSilently) {
  FecGroupEncoder enc(3);
  FecDecoder dec;
  dec.on_parity(*encode_group(enc, 1, 0, 3));
  RtpPacketMut parity = encode_group(enc, 1, 3, 3);
  for (Seq q = 3; q < 6; ++q) {
    dec.on_media(*pkt(1, q, 1000 + q, 1000 + 7 * (q % 3)));
  }
  EXPECT_EQ(dec.on_parity(*parity), nullptr);
  EXPECT_EQ(dec.reconstructed(), 0u);
  EXPECT_EQ(dec.groups_abandoned(), 0u);
}

// ------------------------------------------------- re-NACK holdoff fix

media::RtpPacketMut raw(StreamId s, Seq seq) {
  RtpBody b;
  b.stream_id = s;
  b.seq = seq;
  b.frame_type = media::FrameType::kP;
  b.payload_bytes = 1000;
  return RtpPacket::make(std::move(b));
}

struct BufHarness {
  sim::EventLoop loop;
  std::vector<std::vector<Seq>> nacks;
  std::unique_ptr<transport::ReceiveBuffer> buf;

  explicit BufHarness(transport::ReceiveBuffer::Config cfg = {}) {
    buf = std::make_unique<transport::ReceiveBuffer>(
        &loop, [](const RtpPacketPtr&) {}, [](StreamId) {},
        [this](StreamId, bool, const std::vector<Seq>& m) {
          nacks.push_back(m);
        },
        cfg);
  }
};

TEST(NackHoldoff, NoDuplicateNackInsideUpstreamRtt) {
  // The bug: re-NACKing every scan interval duplicated every RTX on
  // links whose RTT exceeds the 50 ms scan period. With a 200 ms RTT
  // hint the second NACK must wait out rtt + margin, not one interval.
  BufHarness h;
  h.buf->set_rtt_hint(200 * kMs);
  h.buf->on_packet(raw(1, 1));
  h.buf->on_packet(raw(1, 3));  // seq 2 missing
  h.loop.run_until(60 * kMs);
  ASSERT_EQ(h.nacks.size(), 1u);

  // Inside the holdoff window (200 ms RTT + 10 ms margin): silence.
  h.loop.run_until(200 * kMs);
  EXPECT_EQ(h.nacks.size(), 1u);
  // Past it: exactly one re-request.
  h.loop.run_until(320 * kMs);
  EXPECT_EQ(h.nacks.size(), 2u);
}

TEST(NackHoldoff, FecRecoveryCancelsPendingRetry) {
  BufHarness h;
  h.buf->set_rtt_hint(100 * kMs);
  h.buf->on_packet(raw(1, 1));
  h.buf->on_packet(raw(1, 3));
  h.loop.run_until(60 * kMs);
  ASSERT_EQ(h.nacks.size(), 1u);

  // A FEC reconstruction fills the hole before the RTX arrives; the
  // in-flight retry must be cancelled with it.
  RtpPacketMut rec = raw(1, 2);
  rec->fec_recovered = true;
  h.buf->on_packet(rec);
  h.loop.run_until(2 * kSec);
  EXPECT_EQ(h.nacks.size(), 1u);
}

// --------------------------------------------------- parity cache rules

TEST(PacketCache, ParityIsNeverCachedOrBurst) {
  overlay::PacketGopCache cache(4, 4096);
  FecGroupEncoder enc(3);
  for (Seq q = 0; q < 9; ++q) {
    auto p = pkt(7, q, q, 1200,
                 q % 3 == 0 ? media::FrameType::kI : media::FrameType::kP);
    cache.add(p);
    auto parity = enc.add(p->body());
    if (parity) {
      // The slow path hands the cache everything it sees; parity must
      // bounce off (a late joiner's startup burst could otherwise carry
      // mid-group XOR state the client cannot use).
      cache.add(RtpPacket::make(std::move(*parity)));
    }
  }
  EXPECT_EQ(cache.cached_packets(7), 9u);
  for (const auto& p : cache.startup_packets(7)) {
    EXPECT_FALSE(p->is_fec_parity());
  }
  // Parity's seq aliases the group base; the media packet at that seq
  // must still be the one served to NACKs.
  const auto at_base = cache.find_packet(7, 3);
  ASSERT_NE(at_base, nullptr);
  EXPECT_FALSE(at_base->is_fec_parity());
}

// ------------------------------------------------ system-level checks

ScenarioResult run_small(std::uint64_t seed,
                         const std::function<void(SystemConfig&)>& mutate) {
  reset_telemetry();
  SystemConfig sys_cfg = paper_system_config(seed);
  sys_cfg.countries = 2;
  sys_cfg.nodes_per_country = 3;
  mutate(sys_cfg);
  ScenarioConfig scn;
  scn.duration = 30 * kSec;
  scn.day_length = 15 * kSec;
  scn.broadcasts = 2;
  scn.viewer_rate_peak = 1.0;
  scn.mean_view_time = 8 * kSec;
  scn.seed = seed;
  scn.faults.seed = seed + 1;
  scn.faults.link_flaps_per_min = 2.0;
  scn.faults.degrades_per_min = 2.0;
  LiveNetSystem system(sys_cfg);
  ScenarioRunner runner(system, scn);
  return runner.run();
}

std::string all_csv(const ScenarioResult& r) {
  std::ostringstream os;
  write_sessions_csv(r, os);
  write_views_csv(r, os);
  write_path_requests_csv(r, os);
  write_timeline_csv(r, os);
  write_faults_csv(r, os);
  return os.str();
}

TEST(LossRecoveryDifferential, DisabledTierIsByteIdenticalToLegacy) {
  // fec_rate = 0 + single supplier must be THE legacy NACK-only world:
  // same packets, same timing, same CSV bytes. multi_supplier_rtx with
  // fewer than two suppliers routes every NACK straight to the primary,
  // so flipping it without standbys must change nothing either.
  const auto base = run_small(77, [](SystemConfig&) {});
  const std::string base_csv = all_csv(base);

  const auto multi = run_small(77, [](SystemConfig& cfg) {
    cfg.overlay_node.multi_supplier_rtx = true;  // no standby suppliers
  });
  EXPECT_EQ(base_csv, all_csv(multi));
}

TEST(LossRecoveryE2E, FecReconstructsOnLossyOverlayLinks) {
  reset_telemetry();
  SystemConfig cfg = paper_system_config(99);
  cfg.countries = 3;
  cfg.nodes_per_country = 4;
  cfg.dns_candidates = 1;
  cfg.last_resort_nodes = 1;
  cfg.overlay_node.fec_rate = 1.0;
  cfg.overlay_node.fec_group_packets = 5;
  LiveNetSystem sys(cfg);
  client::ClientMetrics qoe;
  client::BroadcasterConfig bc;
  media::VideoSourceConfig vc;
  vc.fps = 25;
  vc.gop_frames = 25;
  vc.bitrate_bps = 1.5e6;
  bc.versions = {vc};
  client::Broadcaster bcast(&sys.network(), 1, bc);
  sys.build_once();
  sys.start();
  const auto producer = sys.attach_client(&bcast, sys.geo().sample_site(0));
  bcast.start(producer, {1});
  sys.loop().run_until(4 * kSec);

  client::Viewer viewer(&sys.network(), &qoe);
  const auto consumer = sys.attach_client(&viewer, sys.geo().sample_site(1));
  viewer.start_view(consumer, 1);
  sys.loop().run_until(8 * kSec);

  // Light random loss on every overlay link: most parity groups lose at
  // most one packet — prime FEC territory.
  const auto ids = sys.overlay_node_ids();
  for (const auto a : ids) {
    for (const auto b : ids) {
      if (auto* l = sys.network().link(a, b)) l->set_loss_rate(0.03);
    }
  }
  sys.loop().run_until(40 * kSec);

  const auto& h = telemetry::handles();
  EXPECT_GT(h.fec_parity_sent->value(), 50u);
  EXPECT_GT(h.fec_recovered->value(), 0u);
  EXPECT_GT(h.recovery_fec_ms->stats().count(), 0u);
  // FEC repairs locally, without an upstream round trip: its recovery
  // latency must beat the NACK/RTX tier's on the same run.
  if (h.recovery_rtx_ms->stats().count() > 10) {
    EXPECT_LT(h.recovery_fec_ms->stats().mean(),
              h.recovery_rtx_ms->stats().mean());
  }
  // Playback survived the loss.
  EXPECT_GT(qoe.records().front().frames_displayed, 300u);

  // A late joiner mid-parity-group gets a clean start: its burst comes
  // from the packet cache, which never holds parity.
  client::ClientMetrics qoe2;
  client::Viewer late(&sys.network(), &qoe2);
  const auto consumer2 = sys.attach_client(&late, sys.geo().sample_site(1));
  late.start_view(consumer2, 1);
  sys.loop().run_until(50 * kSec);
  for (const auto& p : sys.node(consumer2).packet_cache().startup_packets(1)) {
    EXPECT_FALSE(p->is_fec_parity());
  }
  EXPECT_GT(qoe2.records().front().frames_displayed, 100u);
}

TEST(LossRecoveryE2E, CrashAndReRouteSweepsStaleSupplier) {
  // Chaos regression for the supplier set: blackhole the consumer's
  // upstream relay; after the quality loop re-routes, the dead node
  // must not linger in the stream's supplier set (a corpse there would
  // keep attracting racing NACKs forever).
  reset_telemetry();
  SystemConfig cfg = paper_system_config(99);
  cfg.countries = 3;
  cfg.nodes_per_country = 4;
  cfg.dns_candidates = 1;
  cfg.last_resort_nodes = 1;
  cfg.brain.routing_interval = 6 * kSec;
  cfg.overlay_node.report_interval = 2 * kSec;
  cfg.overlay_node.multi_supplier_rtx = true;
  LiveNetSystem sys(cfg);
  client::ClientMetrics qoe;
  client::BroadcasterConfig bc;
  media::VideoSourceConfig vc;
  vc.fps = 25;
  vc.gop_frames = 25;
  vc.bitrate_bps = 1e6;
  bc.versions = {vc};
  client::Broadcaster bcast(&sys.network(), 1, bc);
  sys.build_once();
  sys.start();
  bcast.start(sys.attach_client(&bcast, sys.geo().sample_site(0)), {1});
  sys.loop().run_until(8 * kSec);

  client::Viewer viewer(&sys.network(), &qoe);
  const auto consumer = sys.attach_client(&viewer, sys.geo().sample_site(1));
  viewer.start_view(consumer, 1);
  sys.loop().run_until(16 * kSec);

  const auto* entry = sys.node(consumer).fib().find(1);
  ASSERT_NE(entry, nullptr);
  const auto relay = entry->upstream;
  if (relay == sim::kNoNode) GTEST_SKIP() << "no upstream established";
  // The supplier set tracks the primary.
  const auto* ctx = sys.node(consumer).fib().find_context(1);
  ASSERT_NE(ctx, nullptr);
  ASSERT_FALSE(ctx->suppliers.empty());
  EXPECT_EQ(ctx->suppliers.front(), relay);

  for (const auto peer : sys.overlay_node_ids()) {
    if (peer == relay) continue;
    if (auto* l = sys.network().link(relay, peer)) l->set_loss_rate(1.0);
    if (auto* l = sys.network().link(peer, relay)) l->set_loss_rate(1.0);
  }
  sys.loop().run_until(60 * kSec);

  const auto* after = sys.node(consumer).fib().find(1);
  ASSERT_NE(after, nullptr);
  EXPECT_NE(after->upstream, relay);
  const auto* ctx2 = sys.node(consumer).fib().find_context(1);
  ASSERT_NE(ctx2, nullptr);
  // The new primary leads the supplier set; the dead relay is swept
  // (make-before-break grace is 3 s, long expired by now).
  ASSERT_FALSE(ctx2->suppliers.empty());
  EXPECT_EQ(ctx2->suppliers.front(), after->upstream);
  EXPECT_EQ(std::count(ctx2->suppliers.begin(), ctx2->suppliers.end(), relay),
            0);
}

}  // namespace
}  // namespace livenet
