#include <gtest/gtest.h>

#include "media/framer.h"
#include "media/gop_cache.h"
#include "media/packetizer.h"
#include "media/video_source.h"

namespace livenet::media {
namespace {

Frame make_frame(StreamId s, std::uint64_t id, FrameType t,
                 std::size_t bytes, std::uint64_t gop = 1) {
  Frame f;
  f.stream_id = s;
  f.frame_id = id;
  f.gop_id = gop;
  f.type = t;
  f.size_bytes = bytes;
  f.capture_time = static_cast<Time>(id) * 33 * kMs;
  return f;
}

TEST(Packetizer, FragmentsLargeFrame) {
  Packetizer p(1);
  const auto pkts = p.packetize(make_frame(1, 1, FrameType::kI, 5000));
  ASSERT_EQ(pkts.size(), 5u);  // ceil(5000/1200)
  std::size_t total = 0;
  for (const auto& pkt : pkts) total += pkt->payload_bytes();
  EXPECT_EQ(total, 5000u);
  EXPECT_TRUE(pkts.back()->marker());
  EXPECT_FALSE(pkts.front()->marker());
}

TEST(Packetizer, SequenceNumbersAreContiguousAcrossFrames) {
  Packetizer p(1);
  const auto a = p.packetize(make_frame(1, 1, FrameType::kI, 2500));
  const auto b = p.packetize(make_frame(1, 2, FrameType::kP, 800));
  EXPECT_EQ(a.front()->seq, 1u);
  EXPECT_EQ(a.back()->seq, 3u);
  EXPECT_EQ(b.front()->seq, 4u);
}

TEST(Packetizer, TinyFrameGetsOnePacket) {
  Packetizer p(1);
  const auto pkts = p.packetize(make_frame(1, 1, FrameType::kAudio, 100));
  ASSERT_EQ(pkts.size(), 1u);
  EXPECT_TRUE(pkts[0]->marker());
  EXPECT_TRUE(pkts[0]->is_audio());
}

TEST(Framer, ReassemblesInOrderPackets) {
  std::vector<Frame> out;
  Framer f([&](const Frame& fr) { out.push_back(fr); });
  Packetizer p(1);
  for (const auto& pkt : p.packetize(make_frame(1, 1, FrameType::kI, 3000))) {
    f.on_packet(*pkt);
  }
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].size_bytes, 3000u);
  EXPECT_EQ(out[0].type, FrameType::kI);
  EXPECT_EQ(f.frames_completed(), 1u);
}

TEST(Framer, GapAbandonsCurrentFrame) {
  std::vector<Frame> out;
  Framer f([&](const Frame& fr) { out.push_back(fr); });
  Packetizer p(1);
  const auto pkts = p.packetize(make_frame(1, 1, FrameType::kI, 3000));
  f.on_packet(*pkts[0]);
  f.on_gap();
  for (const auto& pkt : p.packetize(make_frame(1, 2, FrameType::kP, 500))) {
    f.on_packet(*pkt);
  }
  EXPECT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].frame_id, 2u);
  EXPECT_EQ(f.frames_damaged(), 1u);
}

TEST(Framer, NewFrameWhileIncompleteCountsDamage) {
  std::vector<Frame> out;
  Framer f([&](const Frame& fr) { out.push_back(fr); });
  Packetizer p(1);
  const auto a = p.packetize(make_frame(1, 1, FrameType::kI, 3000));
  const auto b = p.packetize(make_frame(1, 2, FrameType::kP, 500));
  f.on_packet(*a[0]);  // frame 1 incomplete
  f.on_packet(*b[0]);  // frame 2 begins
  EXPECT_EQ(f.frames_damaged(), 1u);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].frame_id, 2u);
}

TEST(Framer, CarriesDelayExtensionFromFirstPacket) {
  Frame got;
  Framer f([&](const Frame& fr) { got = fr; });
  Packetizer p(1);
  for (const auto& pkt :
       p.packetize(make_frame(1, 1, FrameType::kI, 2000), 1234)) {
    f.on_packet(*pkt);
  }
  EXPECT_EQ(got.delay_ext_us, 1234);
}

TEST(GopCache, DiscardsFramesBeforeFirstKeyframe) {
  GopCache c(2);
  c.add_frame(make_frame(1, 1, FrameType::kP, 100, 0));
  EXPECT_TRUE(c.empty());
  c.add_frame(make_frame(1, 2, FrameType::kI, 100, 1));
  EXPECT_FALSE(c.empty());
}

TEST(GopCache, EvictsOldGops) {
  GopCache c(2);
  for (std::uint64_t g = 1; g <= 5; ++g) {
    c.add_frame(make_frame(1, g * 10, FrameType::kI, 100, g));
    c.add_frame(make_frame(1, g * 10 + 1, FrameType::kP, 50, g));
  }
  EXPECT_LE(c.gop_count(), 3u);  // max_gops complete + in-progress
  EXPECT_EQ(c.latest_gop_id(), 5u);
}

TEST(GopCache, StartupFramesBeginAtLatestKeyframe) {
  GopCache c(3);
  c.add_frame(make_frame(1, 1, FrameType::kI, 100, 1));
  c.add_frame(make_frame(1, 2, FrameType::kP, 50, 1));
  c.add_frame(make_frame(1, 3, FrameType::kI, 100, 2));
  c.add_frame(make_frame(1, 4, FrameType::kP, 50, 2));
  const auto frames = c.startup_frames();
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].frame_id, 3u);
  EXPECT_TRUE(frames[0].is_keyframe());
}

TEST(GopCache, IgnoresAudio) {
  GopCache c(2);
  c.add_frame(make_frame(1, 1, FrameType::kI, 100, 1));
  c.add_frame(make_frame(1, 2, FrameType::kAudio, 100, 0));
  EXPECT_EQ(c.startup_frames().size(), 1u);
}

TEST(VideoSource, GopPatternStartsWithKeyframe) {
  VideoSourceConfig cfg;
  cfg.gop_frames = 10;
  VideoSource src(1, cfg, Rng(1));
  for (int g = 0; g < 3; ++g) {
    for (int i = 0; i < 10; ++i) {
      const Frame f = src.next_frame(0);
      if (i == 0) {
        EXPECT_EQ(f.type, FrameType::kI);
      } else {
        EXPECT_NE(f.type, FrameType::kI);
      }
      EXPECT_EQ(f.gop_id, static_cast<std::uint64_t>(g + 1));
    }
  }
}

TEST(VideoSource, BitrateApproximatelyConserved) {
  VideoSourceConfig cfg;
  cfg.fps = 30;
  cfg.gop_frames = 30;
  cfg.bitrate_bps = 2e6;
  VideoSource src(1, cfg, Rng(5));
  std::size_t bytes = 0;
  const int frames = 30 * 30;  // 30 seconds
  for (int i = 0; i < frames; ++i) bytes += src.next_frame(0).size_bytes;
  const double bps = static_cast<double>(bytes) * 8.0 / 30.0;
  EXPECT_NEAR(bps, 2e6, 2e5);
}

TEST(VideoSource, IFramesAreLarger) {
  VideoSourceConfig cfg;
  cfg.gop_frames = 30;
  cfg.size_jitter_sigma = 0.0;
  VideoSource src(1, cfg, Rng(1));
  const Frame i_frame = src.next_frame(0);
  const Frame p_frame = src.next_frame(0);
  EXPECT_GT(i_frame.size_bytes, 4 * p_frame.size_bytes);
}

TEST(VideoSource, BFramePatternMarksUnreferenced) {
  VideoSourceConfig cfg;
  cfg.gop_frames = 10;
  cfg.b_per_p = 2;
  VideoSource src(1, cfg, Rng(1));
  int b_count = 0, unref = 0;
  for (int i = 0; i < 10; ++i) {
    const Frame f = src.next_frame(0);
    if (f.type == FrameType::kB) {
      ++b_count;
      if (!f.referenced) ++unref;
    }
  }
  EXPECT_GT(b_count, 0);
  EXPECT_EQ(b_count, unref);
}

TEST(AudioSource, ConstantRate) {
  AudioSource src(1, AudioSourceConfig{});
  const Frame f = src.next_frame(100);
  EXPECT_EQ(f.type, FrameType::kAudio);
  EXPECT_EQ(f.size_bytes, 160u);
  EXPECT_EQ(src.frame_interval(), 20 * kMs);
}

}  // namespace
}  // namespace livenet::media
