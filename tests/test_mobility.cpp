#include <gtest/gtest.h>

#include "client/broadcaster.h"
#include "client/viewer.h"
#include "livenet/system.h"

// Broadcaster mobility (§7.1): when the broadcaster re-homes to a new
// producer node, the old producer becomes a relay fed by the new one —
// viewers keep playing and no downstream path changes.
namespace livenet {
namespace {

TEST(BroadcasterMobility, OldProducerBecomesRelayAndViewersKeepPlaying) {
  SystemConfig cfg;
  cfg.countries = 2;
  cfg.nodes_per_country = 3;
  cfg.dns_candidates = 1;
  cfg.brain.routing_interval = 5 * kSec;
  cfg.overlay_node.report_interval = 2 * kSec;
  cfg.seed = 2024;
  LiveNetSystem sys(cfg);
  client::ClientMetrics qoe;
  client::BroadcasterConfig bc;
  media::VideoSourceConfig vc;
  vc.fps = 25;
  vc.gop_frames = 25;
  vc.bitrate_bps = 1e6;
  bc.versions = {vc};
  client::Broadcaster bcast(&sys.network(), 8, bc);
  sys.build_once();
  sys.start();

  const auto bsite = sys.geo().sample_site(0);
  const auto old_producer = sys.attach_client(&bcast, bsite);
  bcast.start(old_producer, {1});
  sys.loop().run_until(6 * kSec);

  client::Viewer viewer(&sys.network(), &qoe);
  const auto vsite = sys.geo().sample_site(1);
  const auto consumer = sys.attach_client(&viewer, vsite);
  viewer.start_view(consumer, 1);
  sys.loop().run_until(14 * kSec);
  const auto frames_before = qoe.records().front().frames_displayed;
  ASSERT_GT(frames_before, 50u);
  const auto* consumer_entry = sys.node(consumer).fib().find(1);
  ASSERT_NE(consumer_entry, nullptr);
  const auto consumer_upstream = consumer_entry->upstream;

  // The broadcaster moves to a different edge in its country.
  sim::NodeId new_producer = sim::kNoNode;
  for (const auto n : sys.edge_nodes()) {
    if (n != old_producer && sys.country_of_node(n) == 0) {
      new_producer = n;
      break;
    }
  }
  ASSERT_NE(new_producer, sim::kNoNode);
  sim::LinkConfig access;
  access.propagation_delay = 15 * kMs;
  access.bandwidth_bps = 20e6;
  sys.network().add_bidi_link(bcast.node_id(), new_producer, access);
  bcast.migrate(new_producer);
  sys.loop().run_until(30 * kSec);

  // The old producer now relays: no longer locally producing, fed by
  // the new producer.
  const auto* old_entry = sys.node(old_producer).fib().find(1);
  ASSERT_NE(old_entry, nullptr);
  EXPECT_FALSE(old_entry->locally_produced);
  EXPECT_EQ(old_entry->upstream, new_producer);

  // The new producer registered in the SIB.
  EXPECT_EQ(sys.brain().sib().producer_of(1), new_producer);

  // The viewer never resubscribed and kept playing through the move,
  // and its consumer's upstream did not change (§7.1: "the existing
  // overlay paths do not need to change").
  const auto& rec = qoe.records().front();
  EXPECT_GT(rec.frames_displayed, frames_before + 250);
  const auto* entry_after = sys.node(consumer).fib().find(1);
  ASSERT_NE(entry_after, nullptr);
  if (consumer_upstream != old_producer) {
    EXPECT_EQ(entry_after->upstream, consumer_upstream);
  }
  // Path length grew by the extra relay hop (new producer -> old).
  const auto& sess = sys.sessions().sessions().front();
  EXPECT_GE(sess.path_length, 1);
}

}  // namespace
}  // namespace livenet
