#include <gtest/gtest.h>

#include "client/broadcaster.h"
#include "client/viewer.h"
#include "livenet/system.h"

// §7.2 "Flexibility Provided by LiveNet": "we can easily circumvent the
// failed or overloaded nodes by migrating the tasks to others as
// instructed by the control plane." A relay dies mid-stream (all its
// links go black); the consumer's quality loop rescues the session and
// the next routing cycle stops using the dead node.
namespace livenet {
namespace {

TEST(NodeFailure, RelayDeathIsCircumvented) {
  SystemConfig cfg;
  cfg.countries = 3;
  cfg.nodes_per_country = 4;
  cfg.dns_candidates = 1;
  cfg.last_resort_nodes = 1;
  cfg.brain.routing_interval = 6 * kSec;
  cfg.overlay_node.report_interval = 2 * kSec;
  cfg.seed = 99;
  LiveNetSystem sys(cfg);
  client::ClientMetrics qoe;
  client::BroadcasterConfig bc;
  media::VideoSourceConfig vc;
  vc.fps = 25;
  vc.gop_frames = 25;
  vc.bitrate_bps = 1e6;
  bc.versions = {vc};
  client::Broadcaster bcast(&sys.network(), 1, bc);
  sys.build_once();
  sys.start();
  const auto producer =
      sys.attach_client(&bcast, sys.geo().sample_site(0));
  bcast.start(producer, {1});
  sys.loop().run_until(8 * kSec);

  client::Viewer viewer(&sys.network(), &qoe);
  const auto consumer =
      sys.attach_client(&viewer, sys.geo().sample_site(1));
  viewer.start_view(consumer, 1);
  sys.loop().run_until(16 * kSec);

  const auto* entry = sys.node(consumer).fib().find(1);
  ASSERT_NE(entry, nullptr);
  const auto relay = entry->upstream;
  if (relay == sim::kNoNode || relay == producer) {
    GTEST_SKIP() << "direct path: no relay to kill";
  }
  const auto frames_before = qoe.records().front().frames_displayed;
  ASSERT_GT(frames_before, 100u);

  // Kill the relay: every link touching it goes black (node crash as
  // seen from the network).
  for (const auto peer : sys.overlay_node_ids()) {
    if (peer == relay) continue;
    if (auto* l = sys.network().link(relay, peer)) l->set_loss_rate(1.0);
    if (auto* l = sys.network().link(peer, relay)) l->set_loss_rate(1.0);
  }
  sys.loop().run_until(40 * kSec);

  // The consumer re-routed off the dead relay...
  const auto* after = sys.node(consumer).fib().find(1);
  ASSERT_NE(after, nullptr);
  EXPECT_NE(after->upstream, relay);
  EXPECT_GE(sys.sessions().sessions().front().path_switches, 1);
  // ...and playback resumed (frames keep advancing).
  const auto& rec = qoe.records().front();
  EXPECT_GT(rec.frames_displayed, frames_before + 200);
}

TEST(NodeFailure, ThreeVersionLadderDowngradesStepwise) {
  // A 3-version simulcast ladder on a last mile that only sustains the
  // lowest version: the consumer walks the client down the ladder.
  SystemConfig cfg;
  cfg.countries = 2;
  cfg.nodes_per_country = 3;
  cfg.dns_candidates = 1;
  cfg.brain.routing_interval = 5 * kSec;
  cfg.overlay_node.report_interval = 2 * kSec;
  cfg.access_bandwidth_bps = 0.7e6;
  cfg.seed = 303;
  LiveNetSystem sys(cfg);
  client::ClientMetrics qoe;
  client::BroadcasterConfig bc;
  media::VideoSourceConfig v0, v1, v2;
  v0.fps = v1.fps = v2.fps = 25;
  v0.gop_frames = v1.gop_frames = v2.gop_frames = 25;
  v0.bitrate_bps = 2.4e6;
  v1.bitrate_bps = 1.2e6;
  v2.bitrate_bps = 0.4e6;
  bc.versions = {v0, v1, v2};
  client::Broadcaster bcast(&sys.network(), 4, bc);
  sys.build_once();
  sys.start();
  bcast.start(sys.attach_client(&bcast, sys.geo().sample_site(0)),
              {1, 2, 3});
  sys.loop().run_until(6 * kSec);

  client::Viewer viewer(&sys.network(), &qoe);
  const auto consumer =
      sys.attach_client(&viewer, sys.geo().sample_site(1));
  viewer.start_view(consumer, 1, {2, 3});
  sys.loop().run_until(60 * kSec);

  const auto& sess = sys.sessions().sessions().front();
  EXPECT_GE(sess.bitrate_downgrades, 2);  // walked 2.4M -> 1.2M -> 0.4M
  const auto* lowest = sys.node(consumer).fib().find(3);
  ASSERT_NE(lowest, nullptr);
  EXPECT_EQ(lowest->subscriber_clients.size(), 1u);
  // Two full downgrade cycles eat much of the run; playback must still
  // have made visible progress on the surviving version.
  EXPECT_GT(qoe.records().front().frames_displayed, 50u);
}

// Chaos: a node crash at the two most timer-laden moments — while a
// startup burst is being served and while a Brain path lookup is in
// flight — must leave no dangling events behind. The crashed node's
// linger/report/lookup-retry timers are cancelled or swept, so nothing
// fires later to recreate stream state, send reports, or re-issue
// lookups on behalf of a dead process. (The ASan smoke in
// bench/run_benches.sh runs these same tests to catch any event that
// survives and touches freed engine state.)
TEST(NodeFailure, CrashMidStartupBurstLeavesNoDanglingEvents) {
  SystemConfig cfg;
  cfg.countries = 2;
  cfg.nodes_per_country = 3;
  cfg.dns_candidates = 1;
  cfg.brain.routing_interval = 4 * kSec;
  cfg.overlay_node.report_interval = 2 * kSec;
  cfg.seed = 77;
  LiveNetSystem sys(cfg);
  client::ClientMetrics qoe;
  client::BroadcasterConfig bc;
  media::VideoSourceConfig vc;
  vc.fps = 25;
  vc.gop_frames = 25;
  vc.bitrate_bps = 1e6;
  bc.versions = {vc};
  client::Broadcaster bcast(&sys.network(), 1, bc);
  sys.build_once();
  sys.start();
  const auto producer = sys.attach_client(&bcast, sys.geo().sample_site(0));
  bcast.start(producer, {1});
  sys.loop().run_until(8 * kSec);

  client::Viewer viewer(&sys.network(), &qoe);
  const auto consumer = sys.attach_client(&viewer, sys.geo().sample_site(1));
  if (consumer == producer) GTEST_SKIP() << "viewer landed on the producer";
  viewer.start_view(consumer, 1);
  // Far enough for the view to be admitted and the startup burst to be
  // queued on the client pipeline, not far enough for it to drain.
  sys.loop().run_until(8 * kSec + 200 * kMs);
  sys.crash_node(consumer);
  const auto lookups_at_crash = sys.brain().metrics().path_requests.size();

  // Many report intervals and linger windows later: no event recreated
  // state on the dead node and no lookup was retried on its behalf.
  sys.loop().run_until(30 * kSec);
  EXPECT_EQ(sys.node(consumer).fib().stream_count(), 0u);
  EXPECT_EQ(sys.brain().metrics().path_requests.size(), lookups_at_crash);
}

TEST(NodeFailure, CrashMidPathRequestStopsRetries) {
  SystemConfig cfg;
  cfg.countries = 2;
  cfg.nodes_per_country = 3;
  cfg.dns_candidates = 1;
  cfg.brain.routing_interval = 4 * kSec;
  cfg.overlay_node.report_interval = 2 * kSec;
  cfg.seed = 78;
  LiveNetSystem sys(cfg);
  client::ClientMetrics qoe;
  client::BroadcasterConfig bc;
  media::VideoSourceConfig vc;
  vc.fps = 25;
  vc.gop_frames = 25;
  vc.bitrate_bps = 1e6;
  bc.versions = {vc};
  client::Broadcaster bcast(&sys.network(), 1, bc);
  sys.build_once();
  sys.start();
  const auto producer = sys.attach_client(&bcast, sys.geo().sample_site(0));
  bcast.start(producer, {1});
  sys.loop().run_until(8 * kSec);

  client::Viewer viewer(&sys.network(), &qoe);
  const auto consumer = sys.attach_client(&viewer, sys.geo().sample_site(1));
  if (consumer == producer) GTEST_SKIP() << "viewer landed on the producer";
  const auto lookups_before = sys.brain().metrics().path_requests.size();
  viewer.start_view(consumer, 1);

  // Step in 1 ms slices until the Brain has logged the lookup, then
  // crash the consumer while the response is still on the wire.
  Time t = 8 * kSec;
  while (sys.brain().metrics().path_requests.size() == lookups_before &&
         t < 12 * kSec) {
    t += 1 * kMs;
    sys.loop().run_until(t);
  }
  ASSERT_GT(sys.brain().metrics().path_requests.size(), lookups_before)
      << "viewer never triggered a path lookup";
  sys.crash_node(consumer);
  const auto lookups_at_crash = sys.brain().metrics().path_requests.size();

  // The response lands on a node with no matching pending lookup; the
  // retry timer (path_request_timeout) finds its entry swept and dies.
  // Nothing re-establishes the stream or re-asks the Brain.
  sys.loop().run_until(40 * kSec);
  EXPECT_EQ(sys.node(consumer).fib().stream_count(), 0u);
  EXPECT_EQ(sys.brain().metrics().path_requests.size(), lookups_at_crash);
  EXPECT_EQ(qoe.records().front().frames_displayed, 0u);
}

}  // namespace
}  // namespace livenet
