#include <gtest/gtest.h>

#include "overlay/frame_dropper.h"
#include "overlay/messages.h"
#include "overlay/packet_cache.h"
#include "overlay/path.h"
#include "overlay/stream_fib.h"

// Unit tests for the overlay building blocks that are not covered by
// the end-to-end integration suites.
namespace livenet::overlay {
namespace {

using media::FrameType;
using media::RtpPacket;

media::RtpPacketMut pkt(media::StreamId s, media::Seq seq,
                        FrameType t, std::uint64_t frame,
                        std::uint64_t gop, std::uint32_t frag = 0,
                        std::uint32_t frags = 1,
                        bool referenced = true) {
  media::RtpBody body;
  body.stream_id = s;
  body.seq = seq;
  body.frame_type = t;
  body.frame_id = frame;
  body.gop_id = gop;
  body.frag_index = frag;
  body.frag_count = frags;
  body.referenced = referenced;
  body.payload_bytes = 1000;
  return RtpPacket::make(std::move(body));
}

// -------------------------------------------------------------- StreamFib

TEST(StreamFib, SubscribersAccumulateAndRemove) {
  StreamFib fib;
  fib.add_node_subscriber(1, 10);
  fib.add_node_subscriber(1, 11);
  fib.add_client_subscriber(1, 100);
  const auto* e = fib.find(1);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->subscriber_nodes.size(), 2u);
  EXPECT_TRUE(e->has_subscribers());

  fib.remove_node_subscriber(1, 10);
  fib.remove_node_subscriber(1, 10);  // idempotent
  fib.remove_client_subscriber(1, 100);
  EXPECT_EQ(fib.find(1)->subscriber_nodes.size(), 1u);
  fib.remove_node_subscriber(1, 11);
  EXPECT_FALSE(fib.find(1)->has_subscribers());
}

TEST(StreamFib, RemoveOnUnknownStreamIsNoop) {
  StreamFib fib;
  fib.remove_node_subscriber(42, 1);
  fib.remove_client_subscriber(42, 1);
  EXPECT_FALSE(fib.contains(42));
}

TEST(StreamFib, DuplicateSubscriberStoredOnce) {
  StreamFib fib;
  fib.add_node_subscriber(1, 10);
  fib.add_node_subscriber(1, 10);
  EXPECT_EQ(fib.find(1)->subscriber_nodes.size(), 1u);
}

// --------------------------------------------------------- PacketGopCache

TEST(PacketGopCache, StartupBeginsAtNewestKeyframe) {
  PacketGopCache cache(2);
  media::Seq seq = 1;
  for (std::uint64_t gop = 1; gop <= 3; ++gop) {
    cache.add(pkt(1, seq++, FrameType::kI, gop * 10, gop));
    cache.add(pkt(1, seq++, FrameType::kP, gop * 10 + 1, gop));
  }
  const auto burst = cache.startup_packets(1);
  ASSERT_EQ(burst.size(), 2u);
  EXPECT_EQ(burst[0]->gop_id(), 3u);
  EXPECT_TRUE(burst[0]->is_keyframe_packet());
}

TEST(PacketGopCache, PrunesToMaxGops) {
  PacketGopCache cache(2);
  media::Seq seq = 1;
  for (std::uint64_t gop = 1; gop <= 10; ++gop) {
    cache.add(pkt(1, seq++, FrameType::kI, gop * 10, gop));
    for (int i = 0; i < 20; ++i) {
      cache.add(pkt(1, seq++, FrameType::kP, gop * 10 + 1, gop));
    }
  }
  EXPECT_LE(cache.cached_packets(1), 2u * 21u);
}

TEST(PacketGopCache, FindPacketBinarySearch) {
  PacketGopCache cache(3);
  for (media::Seq s = 10; s <= 50; ++s) {
    cache.add(pkt(1, s, s == 10 ? FrameType::kI : FrameType::kP, s, 1));
  }
  ASSERT_NE(cache.find_packet(1, 30), nullptr);
  EXPECT_EQ(cache.find_packet(1, 30)->seq, 30u);
  EXPECT_EQ(cache.find_packet(1, 9), nullptr);
  EXPECT_EQ(cache.find_packet(1, 51), nullptr);
  EXPECT_EQ(cache.find_packet(2, 30), nullptr);
}

TEST(PacketGopCache, HardCapBoundsKeyframelessStream) {
  // Regression: a mid-GoP join delivers only P frames, so the GoP-based
  // prune (keyed on keyframe boundaries) never fires and the cache grew
  // without bound.
  PacketGopCache cache(2, /*max_packets=*/100);
  for (media::Seq s = 1; s <= 5000; ++s) {
    cache.add(pkt(1, s, FrameType::kP, s, 1));
  }
  EXPECT_EQ(cache.cached_packets(1), 100u);
  // The newest packets survive (the ones a late joiner can use).
  EXPECT_NE(cache.find_packet(1, 5000), nullptr);
  EXPECT_EQ(cache.find_packet(1, 1), nullptr);
}

TEST(PacketGopCache, HardCapKeepsKeyframeIndicesConsistent) {
  PacketGopCache cache(8, /*max_packets=*/30);
  media::Seq seq = 1;
  for (std::uint64_t gop = 1; gop <= 5; ++gop) {
    cache.add(pkt(1, seq++, FrameType::kI, gop * 10, gop));
    for (int i = 0; i < 9; ++i) {
      cache.add(pkt(1, seq++, FrameType::kP, gop * 10 + 1, gop));
    }
  }
  EXPECT_LE(cache.cached_packets(1), 30u);
  // Boundary bookkeeping survived front eviction: the burst still opens
  // on the newest keyframe.
  const auto burst = cache.startup_packets(1);
  ASSERT_FALSE(burst.empty());
  EXPECT_TRUE(burst[0]->is_keyframe_packet());
  EXPECT_EQ(burst[0]->gop_id(), 5u);
}

TEST(PacketGopCache, FindPacketSurvivesReorderedInsertion) {
  // Regression: find_packet binary-searches `packets`, which used to be
  // ordered by arrival. Reordered delivery silently broke NACK repair.
  PacketGopCache cache(2);
  cache.add(pkt(1, 10, FrameType::kI, 1, 1));
  cache.add(pkt(1, 13, FrameType::kP, 4, 1));
  cache.add(pkt(1, 11, FrameType::kP, 2, 1));  // late
  cache.add(pkt(1, 14, FrameType::kP, 5, 1));
  cache.add(pkt(1, 12, FrameType::kP, 3, 1));  // late
  for (media::Seq s = 10; s <= 14; ++s) {
    ASSERT_NE(cache.find_packet(1, s), nullptr) << "seq " << s;
    EXPECT_EQ(cache.find_packet(1, s)->seq, s);
  }
  EXPECT_EQ(cache.cached_packets(1), 5u);
}

TEST(PacketGopCache, DuplicatesDroppedAndKeyframeIndexShifts) {
  PacketGopCache cache(4);
  cache.add(pkt(1, 5, FrameType::kP, 1, 1));
  cache.add(pkt(1, 7, FrameType::kP, 3, 1));
  cache.add(pkt(1, 7, FrameType::kP, 3, 1));  // exact duplicate
  cache.add(pkt(1, 6, FrameType::kI, 2, 2));  // late keyframe boundary
  cache.add(pkt(1, 6, FrameType::kI, 2, 2));  // duplicate of the late one
  EXPECT_EQ(cache.cached_packets(1), 3u);
  // The late keyframe was indexed at its sorted position: the startup
  // burst starts at seq 6, not at a stale index.
  const auto burst = cache.startup_packets(1);
  ASSERT_EQ(burst.size(), 2u);
  EXPECT_EQ(burst[0]->seq, 6u);
  EXPECT_TRUE(burst[0]->is_keyframe_packet());
}

TEST(PacketGopCache, AudioNeverCached) {
  PacketGopCache cache(2);
  cache.add(pkt(1, 1, FrameType::kAudio, 1, 0));
  EXPECT_FALSE(cache.has_content(1));
  EXPECT_EQ(cache.cached_packets(1), 0u);
}

TEST(PacketGopCache, ForgetStreamDropsState) {
  PacketGopCache cache(2);
  cache.add(pkt(1, 1, FrameType::kI, 1, 1));
  EXPECT_TRUE(cache.has_content(1));
  cache.forget_stream(1);
  EXPECT_FALSE(cache.has_content(1));
}

// ------------------------------------------------------------ FrameDropper

TEST(FrameDropper, ForwardsEverythingWhenQueueHealthy) {
  FrameDropper d;
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(d.should_forward(*pkt(1, static_cast<media::Seq>(i),
                                      FrameType::kP, i, 1),
                                 10 * kMs));
  }
  EXPECT_EQ(d.p_dropped(), 0u);
  EXPECT_FALSE(d.under_pressure());
}

TEST(FrameDropper, DropsUnreferencedBFirst) {
  FrameDropper d;
  const auto b_unref =
      pkt(1, 1, FrameType::kB, 5, 1, 0, 1, /*referenced=*/false);
  const auto b_ref = pkt(1, 2, FrameType::kB, 6, 1, 0, 1, true);
  const auto p = pkt(1, 3, FrameType::kP, 7, 1);
  EXPECT_FALSE(d.should_forward(*b_unref, 400 * kMs));
  EXPECT_TRUE(d.should_forward(*b_ref, 400 * kMs));
  EXPECT_TRUE(d.should_forward(*p, 400 * kMs));
  EXPECT_EQ(d.b_dropped(), 1u);
}

TEST(FrameDropper, DroppedPPoisonsRestOfGop) {
  FrameDropper d;
  EXPECT_FALSE(d.should_forward(*pkt(1, 1, FrameType::kP, 10, 2), 700 * kMs));
  // Later frame of the same GoP: dropped even though the queue drained.
  EXPECT_FALSE(d.should_forward(*pkt(1, 2, FrameType::kP, 11, 2), 10 * kMs));
  // The next GoP's keyframe resets the state.
  EXPECT_TRUE(d.should_forward(*pkt(1, 3, FrameType::kI, 20, 3), 10 * kMs));
  EXPECT_TRUE(d.should_forward(*pkt(1, 4, FrameType::kP, 21, 3), 10 * kMs));
}

TEST(FrameDropper, WholeGopDroppedAboveTopThreshold) {
  FrameDropper d;
  EXPECT_FALSE(d.should_forward(*pkt(1, 1, FrameType::kP, 10, 2), 1500 * kMs));
  EXPECT_FALSE(d.should_forward(*pkt(1, 2, FrameType::kP, 11, 2), 10 * kMs));
  EXPECT_GT(d.gop_dropped(), 0u);
  EXPECT_TRUE(d.should_forward(*pkt(1, 3, FrameType::kI, 20, 3), 10 * kMs));
}

TEST(FrameDropper, RtxSharesFateButNeverCounts) {
  FrameDropper d;
  // The original unreferenced B drop counts once...
  EXPECT_FALSE(d.should_forward(
      *pkt(1, 1, FrameType::kB, 5, 1, 0, 1, /*referenced=*/false),
      400 * kMs));
  EXPECT_EQ(d.b_dropped(), 1u);
  // ...and its retransmission shares the fate without re-counting
  // (inflated totals would skew the consumer's skip discounting).
  auto rtx = pkt(1, 1, FrameType::kB, 5, 1, 0, 1, /*referenced=*/false);
  rtx->is_rtx = true;
  EXPECT_FALSE(d.should_forward(*rtx, 400 * kMs));
  EXPECT_EQ(d.b_dropped(), 1u);
  EXPECT_EQ(d.total_dropped(), 1u);
}

TEST(FrameDropper, RtxExcludedFromGopAndPoisonCounters) {
  FrameDropper d;
  EXPECT_FALSE(d.should_forward(*pkt(1, 1, FrameType::kP, 10, 2),
                                1500 * kMs));
  EXPECT_EQ(d.dropped(telemetry::DropReason::kGopThreshold), 1u);
  auto rtx = pkt(1, 2, FrameType::kP, 11, 2);
  rtx->is_rtx = true;
  EXPECT_FALSE(d.should_forward(*rtx, 10 * kMs));  // GoP still suppressed
  EXPECT_EQ(d.dropped(telemetry::DropReason::kGopSuppressed), 0u);
  EXPECT_EQ(d.gop_dropped(), 1u);

  EXPECT_FALSE(d.should_forward(*pkt(1, 3, FrameType::kP, 12, 2), 10 * kMs));
  EXPECT_EQ(d.dropped(telemetry::DropReason::kGopSuppressed), 1u);
  EXPECT_EQ(d.gop_dropped(), 2u);
}

TEST(FrameDropper, RtxKeyframeDoesNotResurrectSuppressedGop) {
  FrameDropper d;
  EXPECT_FALSE(d.should_forward(*pkt(1, 1, FrameType::kP, 10, 2),
                                1500 * kMs));
  // A retransmitted keyframe is old data: it must neither clear the
  // suppression nor be forwarded from the suppressed GoP.
  auto rtx_key = pkt(1, 2, FrameType::kI, 9, 2);
  rtx_key->is_rtx = true;
  EXPECT_FALSE(d.should_forward(*rtx_key, 10 * kMs));
  EXPECT_FALSE(d.should_forward(*pkt(1, 3, FrameType::kP, 11, 2), 10 * kMs));
  // A fresh keyframe opens the next GoP normally.
  EXPECT_TRUE(d.should_forward(*pkt(1, 4, FrameType::kI, 20, 3), 10 * kMs));
}

TEST(FrameDropper, KeyframeClearsStaleStateAcrossGopIdReuse) {
  FrameDropper d;
  // Poison GoP id 2 via a dropped P frame...
  EXPECT_FALSE(d.should_forward(*pkt(1, 1, FrameType::kP, 10, 2), 700 * kMs));
  // ...then a *reused* gop id 2 arrives with a fresh keyframe (wrapped
  // counter / restarted encoder). The keyframe must clear the stale
  // poison so the new GoP's frames are not spuriously dropped.
  EXPECT_TRUE(d.should_forward(*pkt(1, 2, FrameType::kI, 20, 2), 10 * kMs));
  EXPECT_TRUE(d.should_forward(*pkt(1, 3, FrameType::kP, 21, 2), 10 * kMs));

  // Same for whole-GoP suppression under id reuse.
  EXPECT_FALSE(d.should_forward(*pkt(1, 4, FrameType::kP, 22, 2),
                                1500 * kMs));
  EXPECT_TRUE(d.should_forward(*pkt(1, 5, FrameType::kI, 30, 2), 10 * kMs));
}

TEST(FrameDropper, AudioAlwaysForwarded) {
  FrameDropper d;
  EXPECT_TRUE(d.should_forward(*pkt(1, 1, FrameType::kAudio, 1, 0),
                               10 * kSec));
}

TEST(FrameDropper, PressureSignalTracksQueue) {
  FrameDropper d;
  d.should_forward(*pkt(1, 1, FrameType::kP, 1, 1), 400 * kMs);
  EXPECT_TRUE(d.under_pressure());
  d.should_forward(*pkt(1, 2, FrameType::kP, 2, 1), 10 * kMs);
  EXPECT_FALSE(d.under_pressure());
}

// ------------------------------------------------------------------- Path

TEST(Path, LengthAndToString) {
  EXPECT_EQ(path_length({}), -1);
  EXPECT_EQ(path_length({5}), 0);
  EXPECT_EQ(path_length({1, 2, 3}), 2);
  EXPECT_EQ(to_string({1, 2, 3}), "1->2->3");
}

// --------------------------------------------------------------- messages

TEST(Messages, WireSizesScaleWithContent) {
  SubscribeRequest sub;
  const auto base = sub.wire_size();
  sub.remaining_reverse_path = {1, 2, 3};
  EXPECT_GT(sub.wire_size(), base);

  PathResponse resp;
  const auto rbase = resp.wire_size();
  resp.paths = {{1, 2, 3}, {1, 4, 3}};
  EXPECT_GT(resp.wire_size(), rbase);

  media::NackMessage nack;
  const auto nbase = nack.wire_size();
  nack.missing = {1, 2, 3, 4};
  EXPECT_EQ(nack.wire_size(), nbase + 16);
}

TEST(Messages, DescribeIsNonEmptyForAllTypes) {
  EXPECT_FALSE(SubscribeRequest{}.describe().empty());
  EXPECT_FALSE(SubscribeAck{}.describe().empty());
  EXPECT_FALSE(UnsubscribeRequest{}.describe().empty());
  EXPECT_FALSE(PublishRequest{}.describe().empty());
  EXPECT_FALSE(PublishStop{}.describe().empty());
  EXPECT_FALSE(ViewRequest{}.describe().empty());
  EXPECT_FALSE(ViewStop{}.describe().empty());
  EXPECT_FALSE(ViewAck{}.describe().empty());
  EXPECT_FALSE(ClientQualityReport{}.describe().empty());
  EXPECT_FALSE(PathRequest{}.describe().empty());
  EXPECT_FALSE(PathResponse{}.describe().empty());
  EXPECT_FALSE(PathPush{}.describe().empty());
  EXPECT_FALSE(StreamRegister{}.describe().empty());
  EXPECT_FALSE(NodeStateReport{}.describe().empty());
  EXPECT_FALSE(OverloadAlarm{}.describe().empty());
  EXPECT_FALSE(StreamSwitchNotice{}.describe().empty());
}

}  // namespace
}  // namespace livenet::overlay
