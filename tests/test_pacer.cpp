#include <gtest/gtest.h>

#include <vector>

#include "sim/event_loop.h"
#include "transport/pacer.h"

namespace livenet::transport {
namespace {

using media::FrameType;
using media::RtpPacket;
using media::RtpPacketPtr;

media::RtpPacketMut pkt(FrameType t, std::size_t bytes, bool rtx = false) {
  media::RtpBody body;
  body.frame_type = t;
  body.payload_bytes = bytes;
  auto p = RtpPacket::make(std::move(body));
  p->is_rtx = rtx;
  return p;
}

struct Capture {
  std::vector<std::pair<Time, RtpPacketPtr>> sent;
};

TEST(Pacer, SpacesPacketsAtConfiguredRate) {
  sim::EventLoop loop;
  Capture cap;
  Pacer::Config cfg;
  cfg.rate_bps = 8e6;  // 1 byte/us
  cfg.i_frame_gain = 1.0;
  Pacer pacer(
      &loop, [&](const RtpPacketPtr& p) { cap.sent.emplace_back(loop.now(), p); },
      cfg);
  for (int i = 0; i < 3; ++i) {
    pacer.enqueue(pkt(FrameType::kP, 1000 - media::kRtpHeaderBytes));
  }
  loop.run();
  ASSERT_EQ(cap.sent.size(), 3u);
  EXPECT_EQ(cap.sent[1].first - cap.sent[0].first, 1000);
  EXPECT_EQ(cap.sent[2].first - cap.sent[1].first, 1000);
}

TEST(Pacer, AudioJumpsTheVideoQueue) {
  sim::EventLoop loop;
  Capture cap;
  Pacer::Config cfg;
  cfg.rate_bps = 8e6;
  Pacer pacer(
      &loop, [&](const RtpPacketPtr& p) { cap.sent.emplace_back(loop.now(), p); },
      cfg);
  pacer.enqueue(pkt(FrameType::kP, 1000));
  pacer.enqueue(pkt(FrameType::kP, 1000));
  pacer.enqueue(pkt(FrameType::kAudio, 100));
  loop.run();
  ASSERT_EQ(cap.sent.size(), 3u);
  // Dispatch is deferred to the loop, so audio preempts everything
  // still queued at fire time.
  EXPECT_EQ(cap.sent[0].second->frame_type(), FrameType::kAudio);
}

TEST(Pacer, RtxBeatsVideoButNotAudio) {
  sim::EventLoop loop;
  Capture cap;
  Pacer pacer(&loop, [&](const RtpPacketPtr& p) {
    cap.sent.emplace_back(loop.now(), p);
  });
  pacer.enqueue(pkt(FrameType::kP, 1000));
  pacer.enqueue(pkt(FrameType::kP, 1000));
  pacer.enqueue(pkt(FrameType::kP, 1000, /*rtx=*/true));
  pacer.enqueue(pkt(FrameType::kAudio, 100));
  loop.run();
  ASSERT_EQ(cap.sent.size(), 4u);
  EXPECT_EQ(cap.sent[0].second->frame_type(), FrameType::kAudio);
  EXPECT_TRUE(cap.sent[1].second->is_rtx);
  EXPECT_FALSE(cap.sent[2].second->is_rtx);
  EXPECT_FALSE(cap.sent[3].second->is_rtx);
}

TEST(Pacer, IFrameGainAcceleratesKeyframes) {
  sim::EventLoop loop;
  Capture cap;
  Pacer::Config cfg;
  cfg.rate_bps = 8e6;
  cfg.i_frame_gain = 2.0;
  Pacer pacer(
      &loop, [&](const RtpPacketPtr& p) { cap.sent.emplace_back(loop.now(), p); },
      cfg);
  pacer.enqueue(pkt(FrameType::kI, 1000 - media::kRtpHeaderBytes));
  pacer.enqueue(pkt(FrameType::kI, 1000 - media::kRtpHeaderBytes));
  pacer.enqueue(pkt(FrameType::kI, 1000 - media::kRtpHeaderBytes));
  loop.run();
  ASSERT_EQ(cap.sent.size(), 3u);
  // At 2x gain, a 1000-byte packet occupies 500us instead of 1000us.
  EXPECT_EQ(cap.sent[1].first - cap.sent[0].first, 500);
}

TEST(Pacer, DropsVideoWhenQueueCapExceeded) {
  sim::EventLoop loop;
  Capture cap;
  Pacer::Config cfg;
  cfg.rate_bps = 1e6;
  cfg.max_queue_bytes = 3000;
  Pacer pacer(
      &loop, [&](const RtpPacketPtr& p) { cap.sent.emplace_back(loop.now(), p); },
      cfg);
  for (int i = 0; i < 10; ++i) pacer.enqueue(pkt(FrameType::kP, 1000));
  EXPECT_GT(pacer.packets_dropped(), 0u);
  loop.run();
  EXPECT_LT(cap.sent.size(), 10u);
}

TEST(Pacer, AudioNeverDroppedByCap) {
  sim::EventLoop loop;
  Capture cap;
  Pacer::Config cfg;
  cfg.rate_bps = 1e6;
  cfg.max_queue_bytes = 1000;
  Pacer pacer(
      &loop, [&](const RtpPacketPtr& p) { cap.sent.emplace_back(loop.now(), p); },
      cfg);
  for (int i = 0; i < 5; ++i) pacer.enqueue(pkt(FrameType::kP, 900));
  for (int i = 0; i < 5; ++i) pacer.enqueue(pkt(FrameType::kAudio, 100));
  loop.run();
  int audio = 0;
  for (const auto& [t, p] : cap.sent) {
    if (p->is_audio()) ++audio;
  }
  EXPECT_EQ(audio, 5);
}

TEST(Pacer, DrainTimeTracksQueue) {
  sim::EventLoop loop;
  Pacer::Config cfg;
  cfg.rate_bps = 8e6;
  Pacer pacer(&loop, [](const RtpPacketPtr&) {}, cfg);
  EXPECT_EQ(pacer.drain_time(), 0);
  pacer.enqueue(pkt(FrameType::kP, 10000 - media::kRtpHeaderBytes));
  EXPECT_NEAR(static_cast<double>(pacer.drain_time()), 10000.0, 10.0);
}

TEST(Pacer, IdleGapCreditClampedAtDrainTime) {
  // Regression: credit must be bounded when it is *spent*. A pacer idle
  // for 10 s with max_burst = 2 ms may catch up with at most 2 ms worth
  // of back-to-back packets on wake — never a 10 s super-burst.
  sim::EventLoop loop;
  Capture cap;
  Pacer::Config cfg;
  cfg.rate_bps = 8e6;  // 1 byte/us -> 1000-byte packet = 1 ms interval
  cfg.i_frame_gain = 1.0;
  cfg.max_burst = 2 * kMs;
  Pacer pacer(
      &loop, [&](const RtpPacketPtr& p) { cap.sent.emplace_back(loop.now(), p); },
      cfg);
  pacer.enqueue(pkt(FrameType::kP, 1000 - media::kRtpHeaderBytes));
  loop.schedule_at(10 * kSec, [&] {
    for (int i = 0; i < 6; ++i) {
      pacer.enqueue(pkt(FrameType::kP, 1000 - media::kRtpHeaderBytes));
    }
  });
  loop.run();
  ASSERT_EQ(cap.sent.size(), 7u);
  EXPECT_EQ(cap.sent[0].first, 0);
  // 2 ms of credit at 1 ms/packet: the first packet plus two caught-up
  // ones leave together, the rest at the steady 1 ms spacing.
  EXPECT_EQ(cap.sent[1].first, 10 * kSec);
  EXPECT_EQ(cap.sent[2].first, 10 * kSec);
  EXPECT_EQ(cap.sent[3].first, 10 * kSec);
  EXPECT_EQ(cap.sent[4].first, 10 * kSec + 1 * kMs);
  EXPECT_EQ(cap.sent[5].first, 10 * kSec + 2 * kMs);
  EXPECT_EQ(cap.sent[6].first, 10 * kSec + 3 * kMs);
}

TEST(Pacer, NoIdleCreditByDefault) {
  // Default max_burst = 0: after any idle gap packets stay strictly
  // interval-spaced (the pre-batching pacer's effective behaviour).
  sim::EventLoop loop;
  Capture cap;
  Pacer::Config cfg;
  cfg.rate_bps = 8e6;
  cfg.i_frame_gain = 1.0;
  Pacer pacer(
      &loop, [&](const RtpPacketPtr& p) { cap.sent.emplace_back(loop.now(), p); },
      cfg);
  pacer.enqueue(pkt(FrameType::kP, 1000 - media::kRtpHeaderBytes));
  loop.schedule_at(10 * kSec, [&] {
    for (int i = 0; i < 3; ++i) {
      pacer.enqueue(pkt(FrameType::kP, 1000 - media::kRtpHeaderBytes));
    }
  });
  loop.run();
  ASSERT_EQ(cap.sent.size(), 4u);
  EXPECT_EQ(cap.sent[1].first, 10 * kSec);
  EXPECT_EQ(cap.sent[2].first, 10 * kSec + 1 * kMs);
  EXPECT_EQ(cap.sent[3].first, 10 * kSec + 2 * kMs);
}

TEST(Pacer, BurstCapBoundsOneDrainCallback) {
  // With ample credit, one fire() drains at most max_burst_packets and
  // re-arms at the same instant for the remainder — the burst still
  // completes at the same virtual time.
  sim::EventLoop loop;
  Capture cap;
  Pacer::Config cfg;
  cfg.rate_bps = 8e6;
  cfg.i_frame_gain = 1.0;
  cfg.max_burst = 10 * kMs;
  cfg.max_burst_packets = 2;
  Pacer pacer(
      &loop, [&](const RtpPacketPtr& p) { cap.sent.emplace_back(loop.now(), p); },
      cfg);
  loop.schedule_at(1 * kSec, [&] {
    for (int i = 0; i < 5; ++i) {
      pacer.enqueue(pkt(FrameType::kP, 1000 - media::kRtpHeaderBytes));
    }
  });
  loop.run();
  ASSERT_EQ(cap.sent.size(), 5u);
  for (const auto& [t, p] : cap.sent) EXPECT_EQ(t, 1 * kSec);
}

TEST(Pacer, RateChangeAffectsSubsequentSpacing) {
  sim::EventLoop loop;
  Capture cap;
  Pacer::Config cfg;
  cfg.rate_bps = 8e6;
  Pacer pacer(
      &loop, [&](const RtpPacketPtr& p) { cap.sent.emplace_back(loop.now(), p); },
      cfg);
  pacer.enqueue(pkt(FrameType::kP, 1000 - media::kRtpHeaderBytes));
  pacer.enqueue(pkt(FrameType::kP, 1000 - media::kRtpHeaderBytes));
  pacer.set_rate_bps(4e6);  // halve the rate
  loop.run();
  ASSERT_EQ(cap.sent.size(), 2u);
  EXPECT_EQ(cap.sent[1].first - cap.sent[0].first, 2000);
}

}  // namespace
}  // namespace livenet::transport
