#include <gtest/gtest.h>

#include "client/broadcaster.h"
#include "client/viewer.h"
#include "livenet/system.h"

// Scenario tests reproducing specific situations described in the
// paper's text: the long-chain problem of Figure 5, overload alarms
// feeding PIB invalidation, last-resort path service, and the delay
// header extension measurement chain of §6.1.
namespace livenet {
namespace {

client::BroadcasterConfig small_broadcast() {
  client::BroadcasterConfig bc;
  media::VideoSourceConfig vc;
  vc.fps = 25;
  vc.gop_frames = 25;
  vc.bitrate_bps = 1e6;
  bc.versions = {vc};
  return bc;
}

// --------------------------------------------------------------- Figure 5

TEST(PaperScenarios, LongChainEmergesFromCacheHit) {
  // Build the paper's Figure 5 by hand: S (producer), A, E1, E3, E4.
  // E3 already subscribes via S -> A -> E1 -> E3. When E4 is told to use
  // S -> E3 -> E4, the cache hit at E3 yields the 4-hop chain
  // S -> A -> E1 -> E3 -> E4.
  sim::EventLoop* loop = nullptr;
  SystemConfig cfg;
  cfg.countries = 1;
  cfg.nodes_per_country = 5;
  cfg.last_resort_nodes = 0;
  cfg.dns_candidates = 1;
  cfg.brain.routing_interval = 1 * kHour;  // we drive paths manually
  cfg.seed = 31;
  LiveNetSystem sys(cfg);
  sys.build_once();
  sys.start();
  loop = &sys.loop();

  const auto ids = sys.overlay_node_ids();
  ASSERT_GE(ids.size(), 5u);
  const auto S = ids[1], A = ids[2], E1 = ids[3], E3 = ids[4], E4 = ids[0];

  client::ClientMetrics qoe;
  client::Broadcaster bcast(&sys.network(), 7, small_broadcast());
  // Attach the broadcaster directly at S (bypass DNS for determinism).
  sim::LinkConfig access;
  access.propagation_delay = 10 * kMs;
  access.bandwidth_bps = 20e6;
  sys.network().add_node(&bcast);
  sys.network().add_bidi_link(bcast.node_id(), S, access);
  bcast.start(S, {1});
  loop->run_until(3 * kSec);

  // E3 subscribes via the long route S -> A -> E1 -> E3 (pushed paths).
  client::Viewer v3(&sys.network(), &qoe);
  sys.network().add_node(&v3);
  sys.network().add_bidi_link(v3.node_id(), E3, access);
  auto push3 = sim::make_message<overlay::PathPush>();
  push3->stream_id = 1;
  push3->paths = {{S, A, E1, E3}};
  sys.network().send(sys.brain().node_id(), E3, push3);
  loop->run_until(4 * kSec);
  v3.start_view(E3, 1);
  loop->run_until(8 * kSec);

  // E4 is told the "short" path S -> E3 -> E4.
  client::Viewer v4(&sys.network(), &qoe);
  sys.network().add_node(&v4);
  sys.network().add_bidi_link(v4.node_id(), E4, access);
  auto push4 = sim::make_message<overlay::PathPush>();
  push4->stream_id = 1;
  push4->paths = {{S, E3, E4}};
  sys.network().send(sys.brain().node_id(), E4, push4);
  loop->run_until(9 * kSec);
  v4.start_view(E4, 1);
  loop->run_until(14 * kSec);

  // E3's session observed 3 hops; E4's cache hit at E3 yields 4 hops —
  // longer than the 2-hop path the controller returned (Figure 5).
  const auto& sessions = sys.sessions().sessions();
  ASSERT_EQ(sessions.size(), 2u);
  EXPECT_EQ(sessions[0].path_length, 3);  // E3 via S->A->E1->E3
  EXPECT_EQ(sessions[1].path_length, 4);  // E4 rode the existing chain
  EXPECT_GT(qoe.records()[1].frames_displayed, 50u);
}

// ------------------------------------------------- overload & last resort

TEST(PaperScenarios, OverloadAlarmInvalidatesPathsAndLastResortServes) {
  SystemConfig cfg;
  cfg.countries = 2;
  cfg.nodes_per_country = 2;  // 1 backbone + 1 edge per country
  cfg.last_resort_nodes = 1;
  cfg.dns_candidates = 1;
  cfg.brain.routing_interval = 4 * kSec;
  // Long report interval: the synthetic alarms below must not be
  // cleared by the nodes' own healthy reports mid-test.
  cfg.overlay_node.report_interval = 1 * kHour;
  cfg.seed = 17;
  LiveNetSystem sys(cfg);
  sys.build_once();
  sys.start();
  sys.loop().run_until(2 * kSec);

  // Mark both backbones overloaded via real-time alarms (as if their
  // load spiked between routing cycles).
  for (const auto bb : sys.backbone_ids()) {
    auto alarm = sim::make_message<overlay::OverloadAlarm>();
    alarm->node = bb;
    alarm->node_load = 0.95;
    sys.network().send(bb, sys.brain().node_id(), alarm);
  }
  sys.loop().run_until(3 * kSec);
  for (const auto bb : sys.backbone_ids()) {
    EXPECT_TRUE(sys.brain().pib().node_overloaded(bb));
  }

  // A lookup between edges whose candidates all relay through the
  // overloaded backbones must fall back to the last-resort relay.
  const auto edges = sys.edge_nodes();
  ASSERT_EQ(edges.size(), 2u);
  const auto lookup =
      sys.brain().path_decision().get_path(media::kNoStream, edges[1]);
  (void)lookup;  // unknown stream: exercised below via the full flow

  client::ClientMetrics qoe;
  client::Broadcaster bcast(&sys.network(), 7, small_broadcast());
  sim::LinkConfig access;
  access.propagation_delay = 10 * kMs;
  access.bandwidth_bps = 20e6;
  sys.network().add_node(&bcast);
  sys.network().add_bidi_link(bcast.node_id(), edges[0], access);
  bcast.start(edges[0], {1});
  sys.loop().run_until(5 * kSec);

  client::Viewer viewer(&sys.network(), &qoe);
  sys.network().add_node(&viewer);
  sys.network().add_bidi_link(viewer.node_id(), edges[1], access);
  viewer.start_view(edges[1], 1);
  sys.loop().run_until(10 * kSec);

  const auto& sessions = sys.sessions().sessions();
  ASSERT_EQ(sessions.size(), 1u);
  // Either a direct 1-hop path survived the filter, or the session rode
  // the last-resort relay (2 hops through the reserved node).
  if (sessions[0].last_resort) {
    EXPECT_EQ(sessions[0].path_length, 2);
  }
  EXPECT_GT(qoe.records()[0].frames_displayed, 30u);
}

TEST(PaperScenarios, HealthyReportClearsOverloadMark) {
  SystemConfig cfg;
  cfg.countries = 2;
  cfg.nodes_per_country = 2;
  cfg.brain.routing_interval = 1 * kHour;
  cfg.seed = 3;
  LiveNetSystem sys(cfg);
  sys.build_once();
  sys.start();
  sys.loop().run_until(1 * kSec);

  const auto node = sys.overlay_node_ids()[0];
  auto alarm = sim::make_message<overlay::OverloadAlarm>();
  alarm->node = node;
  alarm->node_load = 0.9;
  sys.network().send(node, sys.brain().node_id(), alarm);
  sys.loop().run_until(2 * kSec);
  EXPECT_TRUE(sys.brain().pib().node_overloaded(node));

  // The node's periodic report (low load) clears the mark (§4.2).
  sys.loop().run_until(75 * kSec);
  EXPECT_FALSE(sys.brain().pib().node_overloaded(node));
}

// -------------------------------------------------- delay header extension

TEST(PaperScenarios, DelayExtensionAccumulatesPerHop) {
  SystemConfig cfg;
  cfg.countries = 2;
  cfg.nodes_per_country = 3;
  cfg.dns_candidates = 1;
  cfg.brain.routing_interval = 5 * kSec;
  cfg.overlay_node.report_interval = 2 * kSec;
  cfg.seed = 1234;
  LiveNetSystem sys(cfg);
  client::ClientMetrics qoe;
  client::Broadcaster bcast(&sys.network(), 9, small_broadcast());
  sys.build_once();
  sys.start();
  const auto bsite = sys.geo().sample_site(0);
  bcast.start(sys.attach_client(&bcast, bsite), {1});
  sys.loop().run_until(6 * kSec);

  client::Viewer viewer(&sys.network(), &qoe);
  const auto vsite = sys.geo().sample_site(1);
  viewer.start_view(sys.attach_client(&viewer, vsite), 1);
  sys.loop().run_until(20 * kSec);

  const auto& rec = qoe.records().front();
  ASSERT_GT(rec.header_ext_delay_ms.count(), 3u);
  // The header-extension measurement must include at least the encode
  // delay (60 ms), the playback buffer (~300 ms) and some transit.
  EXPECT_GT(rec.header_ext_delay_ms.mean(), 360.0);
  // And it approximates the wall-clock streaming delay within ~50%.
  const double ratio =
      rec.header_ext_delay_ms.mean() / rec.streaming_delay_ms.mean();
  EXPECT_GT(ratio, 0.5);
  EXPECT_LT(ratio, 1.5);
}

}  // namespace
}  // namespace livenet
