#include <gtest/gtest.h>

#include <set>

#include "brain/global_routing.h"
#include "brain/ksp.h"
#include "util/rng.h"

// Property-style sweeps over the routing stack: invariants of Yen's
// KSP and the Global Routing recompute across random graphs.
namespace livenet::brain {
namespace {

RoutingGraph random_graph(std::size_t n, double density, Rng& rng) {
  RoutingGraph g(n);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      if (a == b) continue;
      if (rng.chance(density)) {
        g.set_weight(a, b, rng.uniform(1.0, 100.0));
      }
    }
  }
  return g;
}

double path_cost(const RoutingGraph& g, const std::vector<std::size_t>& p) {
  double c = 0.0;
  for (std::size_t i = 0; i + 1 < p.size(); ++i) {
    c += g.weight(p[i], p[i + 1]);
  }
  return c;
}

class KspRandomGraphs : public ::testing::TestWithParam<int> {};

TEST_P(KspRandomGraphs, PathsValidLooplessSortedDistinct) {
  Rng rng(1000 + GetParam());
  const std::size_t n = 12;
  const RoutingGraph g = random_graph(n, 0.5, rng);

  for (std::size_t src = 0; src < n; ++src) {
    for (std::size_t dst = 0; dst < n; ++dst) {
      if (src == dst) continue;
      const auto paths = k_shortest_paths(g, src, dst, 4);
      std::set<std::vector<std::size_t>> seen;
      double prev_cost = 0.0;
      for (const auto& wp : paths) {
        // Endpoints correct.
        ASSERT_GE(wp.nodes.size(), 2u);
        EXPECT_EQ(wp.nodes.front(), src);
        EXPECT_EQ(wp.nodes.back(), dst);
        // Edges exist and the cost is consistent.
        for (std::size_t i = 0; i + 1 < wp.nodes.size(); ++i) {
          ASSERT_TRUE(g.has_edge(wp.nodes[i], wp.nodes[i + 1]));
        }
        EXPECT_NEAR(wp.cost, path_cost(g, wp.nodes), 1e-9);
        // Loopless.
        const std::set<std::size_t> uniq(wp.nodes.begin(), wp.nodes.end());
        EXPECT_EQ(uniq.size(), wp.nodes.size());
        // Sorted by cost, distinct.
        EXPECT_GE(wp.cost, prev_cost - 1e-9);
        prev_cost = wp.cost;
        EXPECT_TRUE(seen.insert(wp.nodes).second);
      }
      // First path agrees with plain Dijkstra.
      const auto sp = shortest_path(g, src, dst);
      if (sp.has_value()) {
        ASSERT_FALSE(paths.empty());
        EXPECT_NEAR(paths[0].cost, sp->cost, 1e-9);
      } else {
        EXPECT_TRUE(paths.empty());
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KspRandomGraphs,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

class RecomputeRandomViews : public ::testing::TestWithParam<int> {};

TEST_P(RecomputeRandomViews, ConstraintsHoldOnInstalledPaths) {
  Rng rng(2000 + GetParam());
  const int n = 14;
  GlobalDiscovery view;
  std::vector<bool> overloaded(static_cast<std::size_t>(n), false);
  for (int a = 0; a < n; ++a) {
    overlay::NodeStateReport rep;
    rep.node = a;
    rep.node_load = rng.uniform(0.0, 1.0);
    overloaded[static_cast<std::size_t>(a)] = rep.node_load >= 0.8;
    for (int b = 0; b < n; ++b) {
      if (a == b) continue;
      overlay::LinkReport lr;
      lr.to = b;
      lr.rtt = static_cast<Duration>(rng.uniform(5.0, 250.0) *
                                     static_cast<double>(kMs));
      lr.loss_rate = rng.uniform(0.0, 0.01);
      lr.utilization = rng.uniform(0.0, 0.6);
      rep.links.push_back(lr);
    }
    view.on_report(rep, 0, nullptr);
  }

  std::vector<sim::NodeId> nodes;
  for (int i = 0; i < n; ++i) nodes.push_back(i);
  GlobalRouting routing;
  Pib pib;
  const auto res = routing.recompute(view, nodes, {}, &pib);
  EXPECT_EQ(res.pairs, static_cast<std::size_t>(n) * (n - 1));

  for (int a = 0; a < n; ++a) {
    for (int b = 0; b < n; ++b) {
      if (a == b) continue;
      const auto* paths = pib.find(a, b);
      ASSERT_NE(paths, nullptr);
      EXPECT_LE(paths->size(), 3u);
      for (const auto& p : *paths) {
        EXPECT_LE(overlay::path_length(p), 3);  // constraint (iii)
        EXPECT_EQ(p.front(), a);
        EXPECT_EQ(p.back(), b);
        for (std::size_t i = 1; i + 1 < p.size(); ++i) {
          // constraint (ii): no overloaded relays.
          EXPECT_FALSE(overloaded[static_cast<std::size_t>(p[i])])
              << "overloaded relay " << p[i] << " on " <<
                 overlay::to_string(p);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecomputeRandomViews,
                         ::testing::Values(1, 2, 3, 4));

TEST(LastResort, AlwaysTwoHopsThroughReservedNode) {
  Rng rng(77);
  const int n = 10;
  GlobalDiscovery view;
  for (int a = 0; a < n + 2; ++a) {
    overlay::NodeStateReport rep;
    rep.node = a;
    rep.node_load = 0.2;
    for (int b = 0; b < n + 2; ++b) {
      if (a == b) continue;
      overlay::LinkReport lr;
      lr.to = b;
      lr.rtt = static_cast<Duration>(rng.uniform(5.0, 100.0) *
                                     static_cast<double>(kMs));
      lr.utilization = 0.1;
      rep.links.push_back(lr);
    }
    view.on_report(rep, 0, nullptr);
  }
  std::vector<sim::NodeId> nodes;
  for (int i = 0; i < n; ++i) nodes.push_back(i);
  GlobalRouting routing;
  Pib pib;
  routing.recompute(view, nodes, {n, n + 1}, &pib);
  for (int a = 0; a < n; ++a) {
    for (int b = 0; b < n; ++b) {
      if (a == b) continue;
      const overlay::Path lr = pib.last_resort(a, b);
      ASSERT_EQ(lr.size(), 3u);
      EXPECT_TRUE(lr[1] == n || lr[1] == n + 1);
    }
  }
}

}  // namespace
}  // namespace livenet::brain
