#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "sim/event_loop.h"
#include "transport/gcc.h"
#include "transport/pacer.h"
#include "transport/receive_buffer.h"
#include "util/rng.h"

// Property-style sweeps over the transport layer: invariants that must
// hold across loss rates, reorder depths and traffic mixes.
namespace livenet::transport {
namespace {

using media::RtpPacketPtr;
using media::Seq;

media::RtpPacketMut pkt(Seq seq, bool audio = false) {
  media::RtpBody body;
  body.stream_id = 1;
  body.seq = seq;
  body.frame_type = audio ? media::FrameType::kAudio : media::FrameType::kP;
  body.payload_bytes = audio ? 160 : 1200;
  return media::RtpPacket::make(std::move(body));
}

// ---------------------------------------------------------------------
// ReceiveBuffer: under any loss pattern with a perfect retransmitter,
// every packet is delivered exactly once and in order.

class ReceiveBufferLossSweep : public ::testing::TestWithParam<int> {};

TEST_P(ReceiveBufferLossSweep, ExactlyOnceInOrderWithRecovery) {
  const double loss = GetParam() / 100.0;
  sim::EventLoop loop;
  Rng rng(1234 + GetParam());

  std::vector<Seq> delivered;
  int gaps = 0;
  // "Upstream": retransmits anything NACKed after a small delay, with
  // the same loss probability applied to retransmissions.
  std::unique_ptr<ReceiveBuffer> buf;
  auto retransmit = [&](Seq seq) {
    loop.schedule_after(20 * kMs, [&, seq] {
      if (!rng.chance(loss)) buf->on_packet(pkt(seq));
    });
  };
  buf = std::make_unique<ReceiveBuffer>(
      &loop, [&](const RtpPacketPtr& p) { delivered.push_back(p->seq); },
      [&](media::StreamId) { ++gaps; },
      [&](media::StreamId, bool, const std::vector<Seq>& missing) {
        for (const Seq s : missing) retransmit(s);
      });

  constexpr Seq kCount = 600;
  for (Seq s = 1; s <= kCount; ++s) {
    loop.schedule_after(2 * kMs * static_cast<Duration>(s), [&, s] {
      if (!rng.chance(loss)) buf->on_packet(pkt(s));
    });
  }
  loop.run_until(60 * kSec);

  // In order (possibly with gaps where all 8 NACK rounds were lost).
  EXPECT_TRUE(std::is_sorted(delivered.begin(), delivered.end()));
  // Exactly once.
  std::set<Seq> unique(delivered.begin(), delivered.end());
  EXPECT_EQ(unique.size(), delivered.size());
  // With loss <= 30% and 8 retries, near-complete delivery.
  EXPECT_GE(delivered.size(), kCount * 95 / 100);
  if (loss == 0.0) {
    EXPECT_EQ(delivered.size(), kCount);
    EXPECT_EQ(gaps, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(LossRates, ReceiveBufferLossSweep,
                         ::testing::Values(0, 1, 5, 10, 20, 30));

// ---------------------------------------------------------------------
// ReceiveBuffer: reorder tolerance — any permutation within a window is
// ironed out without NACK storms when nothing is actually lost.

class ReceiveBufferReorderSweep : public ::testing::TestWithParam<int> {};

TEST_P(ReceiveBufferReorderSweep, ReorderWithinWindowNoSpuriousGiveup) {
  const int window = GetParam();
  sim::EventLoop loop;
  Rng rng(99 + window);
  std::vector<Seq> delivered;
  int gaps = 0;
  ReceiveBuffer buf(
      &loop, [&](const RtpPacketPtr& p) { delivered.push_back(p->seq); },
      [&](media::StreamId) { ++gaps; },
      [](media::StreamId, bool, const std::vector<Seq>&) {});

  constexpr Seq kCount = 400;
  std::vector<Seq> order;
  for (Seq s = 1; s <= kCount; ++s) order.push_back(s);
  // Bounded shuffle: swap within `window`. Position 0 stays put: the
  // buffer intentionally syncs its expected seq to the first arrival
  // (mid-stream joins from cache bursts), so a reordered stream start
  // would legitimately discard the earlier packet.
  for (std::size_t i = 1; i + 1 < order.size(); ++i) {
    const std::size_t j =
        i + rng.index(static_cast<std::size_t>(window) + 1);
    if (j < order.size()) std::swap(order[i], order[j]);
  }
  Time t = 0;
  for (const Seq s : order) {
    t += 1 * kMs;
    loop.schedule_at(t, [&, s] { buf.on_packet(pkt(s)); });
  }
  loop.run_until(10 * kSec);

  EXPECT_EQ(delivered.size(), kCount);
  EXPECT_TRUE(std::is_sorted(delivered.begin(), delivered.end()));
  EXPECT_EQ(gaps, 0);
}

INSTANTIATE_TEST_SUITE_P(Windows, ReceiveBufferReorderSweep,
                         ::testing::Values(1, 3, 8, 16));

// ---------------------------------------------------------------------
// Pacer: conservation and priority invariants across traffic mixes.

class PacerMixSweep : public ::testing::TestWithParam<int> {};

TEST_P(PacerMixSweep, ConservesPacketsAndHonorsRate) {
  const int audio_percent = GetParam();
  sim::EventLoop loop;
  Rng rng(7 + audio_percent);
  std::vector<RtpPacketPtr> sent;
  Pacer::Config cfg;
  cfg.rate_bps = 4e6;
  Pacer pacer(&loop, [&](const RtpPacketPtr& p) { sent.push_back(p); }, cfg);

  constexpr int kCount = 300;
  int audio_in = 0;
  for (int i = 0; i < kCount; ++i) {
    const bool audio = rng.chance(audio_percent / 100.0);
    audio_in += audio ? 1 : 0;
    pacer.enqueue(pkt(static_cast<Seq>(i + 1), audio));
  }
  loop.run();

  // Conservation: everything enqueued was sent (no drops below cap).
  EXPECT_EQ(sent.size() + pacer.packets_dropped(), kCount);
  EXPECT_EQ(pacer.packets_dropped(), 0u);
  int audio_out = 0;
  for (const auto& p : sent) audio_out += p->is_audio() ? 1 : 0;
  EXPECT_EQ(audio_out, audio_in);

  // Rate: total bytes / elapsed <= configured rate (+ burst allowance).
  if (sent.size() > 10) {
    std::size_t bytes = 0;
    for (const auto& p : sent) bytes += p->wire_size();
    const double elapsed = to_sec(loop.now());
    if (elapsed > 0.1) {
      EXPECT_LE(static_cast<double>(bytes) * 8.0 / elapsed,
                cfg.rate_bps * 1.25);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AudioShares, PacerMixSweep,
                         ::testing::Values(0, 10, 50, 90));

// ---------------------------------------------------------------------
// GCC: the estimate stays within configured bounds whatever the inputs.

class GccBoundsSweep : public ::testing::TestWithParam<int> {};

TEST_P(GccBoundsSweep, RembAlwaysWithinBounds) {
  Rng rng(GetParam());
  GccReceiver rx(10e6);
  Time send = 0, arrival = 0;
  for (int i = 0; i < 3000; ++i) {
    send += static_cast<Duration>(rng.uniform(0.2, 30.0) *
                                  static_cast<double>(kMs));
    arrival = send + static_cast<Duration>(rng.uniform(5.0, 400.0) *
                                           static_cast<double>(kMs));
    rx.on_packet(send, arrival,
                 static_cast<std::size_t>(rng.uniform_int(100, 1500)));
    EXPECT_GE(rx.remb_bps(), 64e3);
    EXPECT_LE(rx.remb_bps(), 500e6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GccBoundsSweep,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(GccSenderProperty, PacingBoundedUnderArbitraryFeedback) {
  Rng rng(55);
  GccSender s;
  for (int i = 0; i < 5000; ++i) {
    s.on_feedback(rng.uniform(0.0, 1e9), rng.uniform(0.0, 1.0));
    EXPECT_GE(s.pacing_rate_bps(), 64e3);
    EXPECT_LE(s.pacing_rate_bps(), 500e6);
  }
}

}  // namespace
}  // namespace livenet::transport
