#include <gtest/gtest.h>

#include "client/broadcaster.h"
#include "client/viewer.h"
#include "hier/hier_control.h"
#include "livenet/system.h"

// Proactive path push for popular broadcasters (§4.4) and the VDN-style
// Hier controller's mapping policy.
namespace livenet {
namespace {

TEST(ProactivePush, PopularStreamPathsArriveBeforeViewers) {
  SystemConfig cfg;
  cfg.countries = 2;
  cfg.nodes_per_country = 3;
  cfg.dns_candidates = 1;
  cfg.brain.routing_interval = 4 * kSec;
  cfg.brain.push_top_n = 2;
  cfg.overlay_node.report_interval = 2 * kSec;
  cfg.seed = 55;
  LiveNetSystem sys(cfg);
  client::ClientMetrics qoe;
  client::BroadcasterConfig bc;
  media::VideoSourceConfig vc;
  vc.fps = 25;
  vc.gop_frames = 25;
  vc.bitrate_bps = 1e6;
  bc.versions = {vc};
  client::Broadcaster bcast(&sys.network(), 5, bc);
  sys.build_once();
  sys.start();
  const auto bsite = sys.geo().sample_site(0);
  bcast.start(sys.attach_client(&bcast, bsite), {1});

  // Mark the stream popular (campaign notified in advance, §4.4);
  // after the next routing cycle every node holds pushed paths.
  sys.brain().mark_popular(1);
  sys.loop().run_until(10 * kSec);

  // A first-ever viewer at a node that never served this stream: the
  // pushed path makes it a local (path-information) hit with no
  // Brain round trip.
  client::Viewer viewer(&sys.network(), &qoe);
  const auto vsite = sys.geo().sample_site(1);
  const auto consumer = sys.attach_client(&viewer, vsite);
  const auto requests_before = sys.brain().metrics().path_requests.size();
  viewer.start_view(consumer, 1);
  sys.loop().run_until(16 * kSec);

  ASSERT_EQ(sys.sessions().sessions().size(), 1u);
  const auto& sess = sys.sessions().sessions().front();
  EXPECT_TRUE(sess.local_hit);
  EXPECT_EQ(sys.brain().metrics().path_requests.size(), requests_before);
  EXPECT_GT(qoe.records().front().frames_displayed, 50u);
  // Startup benefited: no lookup round trip in the critical path.
  EXPECT_LT(qoe.records().front().startup_delay(), 1500 * kMs);
}

TEST(HierControl, AffinityPreferredUnderBalancedLoad) {
  sim::EventLoop loop;
  sim::Network net(&loop);
  hier::HierControl ctrl(&net);
  ctrl.set_l2_nodes({10, 11, 12});
  ctrl.set_affinity(1, 11);

  // Drive pick_l2 via the message interface.
  class Probe final : public sim::SimNode {
   public:
    void on_message(sim::NodeId, const sim::MessagePtr& msg) override {
      if (auto resp =
              sim::msg_cast<const hier::MapResponse>(msg)) {
        l2s.push_back(resp->l2);
      }
    }
    std::vector<sim::NodeId> l2s;
  };
  Probe l1;
  const auto ctrl_id = net.add_node(&ctrl);
  const auto l1_id = net.add_node(&l1);
  sim::LinkConfig lc;
  lc.propagation_delay = 1 * kMs;
  net.add_bidi_link(ctrl_id, l1_id, lc);

  for (int i = 0; i < 5; ++i) {
    auto req = sim::make_message<hier::MapRequest>();
    req->request_id = static_cast<std::uint64_t>(i + 1);
    req->stream_id = static_cast<media::StreamId>(i + 1);
    req->l1 = 1;
    net.send(l1_id, ctrl_id, req);
  }
  loop.run_until(1 * kSec);
  ASSERT_EQ(l1.l2s.size(), 5u);
  for (const auto l2 : l1.l2s) {
    EXPECT_EQ(l2, 11);  // balanced load: geographic affinity wins
  }
}

TEST(HierControl, SkewedLoadFallsBackToLeastLoaded) {
  sim::EventLoop loop;
  sim::Network net(&loop);
  hier::HierControl ctrl(&net);
  ctrl.set_l2_nodes({10, 11});
  ctrl.set_affinity(1, 11);

  class Probe final : public sim::SimNode {
   public:
    void on_message(sim::NodeId, const sim::MessagePtr& msg) override {
      if (auto resp =
              sim::msg_cast<const hier::MapResponse>(msg)) {
        l2s.push_back(resp->l2);
      }
    }
    std::vector<sim::NodeId> l2s;
  };
  Probe l1;
  const auto ctrl_id = net.add_node(&ctrl);
  const auto l1_id = net.add_node(&l1);
  sim::LinkConfig lc;
  lc.propagation_delay = 1 * kMs;
  net.add_bidi_link(ctrl_id, l1_id, lc);

  // Many distinct streams from the same L1: once the affine L2's
  // assignment count runs far ahead, the controller spills to the
  // least-loaded alternative.
  for (int i = 0; i < 40; ++i) {
    auto req = sim::make_message<hier::MapRequest>();
    req->request_id = static_cast<std::uint64_t>(i + 1);
    req->stream_id = static_cast<media::StreamId>(i + 1);
    req->l1 = 1;
    net.send(l1_id, ctrl_id, req);
  }
  loop.run_until(2 * kSec);
  ASSERT_EQ(l1.l2s.size(), 40u);
  int spilled = 0;
  for (const auto l2 : l1.l2s) {
    if (l2 == 10) ++spilled;
  }
  EXPECT_GT(spilled, 5);  // load balancing engaged
}

}  // namespace
}  // namespace livenet
