#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "overlay/packet_cache.h"
#include "sim/event_loop.h"
#include "transport/receive_buffer.h"
#include "transport/send_history.h"
#include "util/rng.h"

namespace livenet::transport {
namespace {

using media::RtpPacket;
using media::RtpPacketPtr;
using media::Seq;
using media::StreamId;

media::RtpPacketMut pkt(StreamId s, Seq seq,
                        media::FrameType t = media::FrameType::kP) {
  media::RtpBody body;
  body.stream_id = s;
  body.seq = seq;
  body.frame_type = t;
  body.payload_bytes = 1000;
  return RtpPacket::make(std::move(body));
}

struct Harness {
  sim::EventLoop loop;
  std::vector<Seq> delivered;
  std::vector<std::vector<Seq>> nacks;
  int gaps = 0;
  std::unique_ptr<ReceiveBuffer> buf;

  explicit Harness(ReceiveBuffer::Config cfg = {}) {
    buf = std::make_unique<ReceiveBuffer>(
        &loop,
        [this](const RtpPacketPtr& p) { delivered.push_back(p->seq); },
        [this](StreamId) { ++gaps; },
        [this](StreamId, bool, const std::vector<Seq>& m) { nacks.push_back(m); },
        cfg);
  }
};

TEST(ReceiveBuffer, InOrderDeliveryIsImmediate) {
  Harness h;
  for (Seq s = 1; s <= 5; ++s) h.buf->on_packet(pkt(1, s));
  EXPECT_EQ(h.delivered, (std::vector<Seq>{1, 2, 3, 4, 5}));
  EXPECT_TRUE(h.nacks.empty());
}

TEST(ReceiveBuffer, ReordersOutOfOrderPackets) {
  Harness h;
  h.buf->on_packet(pkt(1, 1));
  h.buf->on_packet(pkt(1, 3));
  h.buf->on_packet(pkt(1, 2));
  EXPECT_EQ(h.delivered, (std::vector<Seq>{1, 2, 3}));
}

TEST(ReceiveBuffer, NackAfterScanInterval) {
  Harness h;
  h.buf->on_packet(pkt(1, 1));
  h.buf->on_packet(pkt(1, 4));  // 2, 3 missing
  h.loop.run_until(60 * kMs);
  ASSERT_FALSE(h.nacks.empty());
  EXPECT_EQ(h.nacks[0], (std::vector<Seq>{2, 3}));
}

TEST(ReceiveBuffer, RecoveredPacketStopsNacking) {
  Harness h;
  h.buf->on_packet(pkt(1, 1));
  h.buf->on_packet(pkt(1, 3));
  h.loop.run_until(60 * kMs);
  ASSERT_EQ(h.nacks.size(), 1u);
  h.buf->on_packet(pkt(1, 2));  // recovery
  EXPECT_EQ(h.delivered, (std::vector<Seq>{1, 2, 3}));
  h.loop.run_until(500 * kMs);
  EXPECT_EQ(h.nacks.size(), 1u);  // no further NACKs
}

TEST(ReceiveBuffer, RenacksUntilBoundThenGivesUp) {
  ReceiveBuffer::Config cfg;
  cfg.nack_interval = 50 * kMs;
  cfg.giveup_after = 10 * kSec;  // bound by retries, not time
  cfg.max_nacks_per_seq = 3;
  Harness h(cfg);
  h.buf->on_packet(pkt(1, 1));
  h.buf->on_packet(pkt(1, 3));
  h.loop.run_until(5 * kSec);
  EXPECT_EQ(h.nacks.size(), 3u);
  EXPECT_EQ(h.gaps, 1);
  // After giving up, seq 3 must have been delivered past the hole.
  EXPECT_EQ(h.delivered, (std::vector<Seq>{1, 3}));
}

TEST(ReceiveBuffer, GiveupByAgeSkipsHole) {
  ReceiveBuffer::Config cfg;
  cfg.giveup_after = 200 * kMs;
  Harness h(cfg);
  h.buf->on_packet(pkt(1, 1));
  h.buf->on_packet(pkt(1, 3));
  h.loop.run_until(1 * kSec);
  EXPECT_EQ(h.gaps, 1);
  EXPECT_EQ(h.delivered, (std::vector<Seq>{1, 3}));
}

TEST(ReceiveBuffer, DuplicatesIgnored) {
  Harness h;
  h.buf->on_packet(pkt(1, 1));
  h.buf->on_packet(pkt(1, 1));
  h.buf->on_packet(pkt(1, 2));
  h.buf->on_packet(pkt(1, 1));
  EXPECT_EQ(h.delivered, (std::vector<Seq>{1, 2}));
  EXPECT_EQ(h.buf->duplicates(), 2u);
}

TEST(ReceiveBuffer, StreamsAreIndependent) {
  Harness h;
  h.buf->on_packet(pkt(1, 1));
  h.buf->on_packet(pkt(2, 100));  // different stream starts at 100
  h.buf->on_packet(pkt(2, 101));
  h.buf->on_packet(pkt(1, 2));
  EXPECT_EQ(h.delivered, (std::vector<Seq>{1, 100, 101, 2}));
}

TEST(ReceiveBuffer, FirstPacketSyncsExpectedSeq) {
  Harness h;
  h.buf->on_packet(pkt(1, 500));  // joined mid-stream (cache burst)
  h.buf->on_packet(pkt(1, 501));
  EXPECT_EQ(h.delivered, (std::vector<Seq>{500, 501}));
  h.loop.run_until(1 * kSec);
  EXPECT_TRUE(h.nacks.empty());  // no NACK storm for seqs before join
}

TEST(ReceiveBuffer, LossFractionReflectsHoles) {
  Harness h;
  h.buf->on_packet(pkt(1, 1));
  h.buf->on_packet(pkt(1, 2));
  h.buf->on_packet(pkt(1, 4));  // one hole
  const double frac = h.buf->take_loss_fraction();
  EXPECT_NEAR(frac, 0.25, 1e-9);  // 1 hole / (3 received + 1 hole)
  EXPECT_EQ(h.buf->take_loss_fraction(), 0.0);  // counters reset
}

// Torture: the same adversarial arrival order (bounded reordering plus
// sprinkled exact duplicates) is fed to the transport reorder buffer and
// to the overlay packet cache; both must converge to a clean in-order,
// duplicate-free view of the stream.
TEST(TortureReordering, ReceiveBufferAndGopCacheSurviveChaoticFeed) {
  constexpr StreamId kStream = 7;
  constexpr Seq kGopLen = 40;
  constexpr Seq kTotal = 400;

  std::vector<media::RtpPacketMut> wire;
  for (Seq s = 1; s <= kTotal; ++s) {
    const auto t = (s - 1) % kGopLen == 0 ? media::FrameType::kI
                                          : media::FrameType::kP;
    wire.push_back(pkt(kStream, s, t));
  }

  // Bounded shuffle (window 8) keeping the first packet in place, so the
  // receive buffer syncs its expected seq to 1.
  Rng rng(2024);
  for (std::size_t i = 1; i + 1 < wire.size(); ++i) {
    const std::size_t j =
        i + rng.index(std::min<std::size_t>(8, wire.size() - i));
    std::swap(wire[i], wire[j]);
  }
  std::vector<media::RtpPacketMut> feed;
  std::size_t dup_count = 0;
  for (std::size_t i = 0; i < wire.size(); ++i) {
    feed.push_back(wire[i]);
    if (i > 0 && i % 10 == 0) {
      feed.push_back(wire[i - 1 - rng.index(std::min<std::size_t>(i, 8))]);
      ++dup_count;
    }
  }

  Harness h;
  overlay::PacketGopCache cache(2, 4096);
  for (const auto& p : feed) {
    h.buf->on_packet(p);
    cache.add(p);
  }

  // The reorder buffer must emit every packet exactly once, in order.
  ASSERT_EQ(h.delivered.size(), kTotal);
  for (Seq s = 1; s <= kTotal; ++s) EXPECT_EQ(h.delivered[s - 1], s);
  EXPECT_EQ(h.buf->duplicates(), dup_count);
  h.loop.run_until(1 * kSec);
  EXPECT_TRUE(h.nacks.empty());  // every hole was filled during the feed

  // The cache pruned to the newest GoPs; what remains must be a clean
  // seq-sorted, duplicate-free run ending at the newest packet.
  ASSERT_TRUE(cache.has_content(kStream));
  const auto burst = cache.startup_packets(kStream);
  ASSERT_FALSE(burst.empty());
  EXPECT_TRUE(burst.front()->is_keyframe_packet());
  EXPECT_EQ(burst.back()->seq, kTotal);
  for (std::size_t i = 1; i < burst.size(); ++i) {
    EXPECT_LT(burst[i - 1]->seq, burst[i]->seq);
  }
  // Every packet in the burst range is individually findable (the NACK
  // repair path binary-searches by seq).
  for (Seq s = burst.front()->seq; s <= kTotal; ++s) {
    const auto found = cache.find_packet(kStream, s);
    ASSERT_NE(found, nullptr) << "seq " << s;
    EXPECT_EQ(found->seq, s);
  }
  EXPECT_EQ(cache.find_packet(kStream, kTotal + 1), nullptr);
}

TEST(SendHistory, LookupAndExpiry) {
  SendHistory::Config cfg;
  cfg.max_age = 1 * kSec;
  SendHistory hist(cfg);
  auto p = pkt(1, 42);
  hist.record(p, 0);
  EXPECT_EQ(hist.lookup(1, false, 42, 500 * kMs), p);
  EXPECT_EQ(hist.lookup(1, false, 42, 3 * kSec), nullptr);  // expired
}

TEST(SendHistory, ForgetStreamRemovesEntries) {
  SendHistory hist;
  hist.record(pkt(1, 1), 0);
  hist.record(pkt(2, 1), 0);
  hist.forget_stream(1);
  EXPECT_EQ(hist.lookup(1, false, 1, 0), nullptr);
  EXPECT_NE(hist.lookup(2, false, 1, 0), nullptr);
}

TEST(SendHistory, CapacityBounded) {
  SendHistory::Config cfg;
  cfg.max_age = 100 * kSec;
  cfg.max_packets = 100;
  SendHistory hist(cfg);
  for (Seq s = 1; s <= 200; ++s) hist.record(pkt(1, s), static_cast<Time>(s));
  EXPECT_LE(hist.size(), 101u);
  EXPECT_EQ(hist.lookup(1, false, 1, 200), nullptr);    // evicted
  EXPECT_NE(hist.lookup(1, false, 200, 200), nullptr);  // recent kept
}

}  // namespace
}  // namespace livenet::transport
