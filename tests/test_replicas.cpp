#include <gtest/gtest.h>

#include "client/broadcaster.h"
#include "client/viewer.h"
#include "livenet/system.h"

// Replicated Path Decision (§7.1): replicas converge to the primary's
// PIB/SIB, serve lookups correctly, and shorten lookup round trips for
// consumers far from the primary.
namespace livenet {
namespace {

SystemConfig replica_config(int replicas) {
  SystemConfig cfg;
  cfg.countries = 3;
  cfg.nodes_per_country = 3;
  cfg.path_decision_replicas = replicas;
  cfg.dns_candidates = 1;
  cfg.brain.routing_interval = 5 * kSec;
  cfg.overlay_node.report_interval = 2 * kSec;
  cfg.seed = 4242;
  return cfg;
}

client::BroadcasterConfig one_version() {
  client::BroadcasterConfig bc;
  media::VideoSourceConfig vc;
  vc.fps = 25;
  vc.gop_frames = 25;
  vc.bitrate_bps = 1e6;
  bc.versions = {vc};
  return bc;
}

TEST(Replicas, ConvergeToPrimaryPib) {
  LiveNetSystem sys(replica_config(2));
  sys.build_once();
  sys.start();
  sys.loop().run_until(8 * kSec);  // a routing cycle + replication

  ASSERT_EQ(sys.replicas().size(), 2u);
  const auto& primary = sys.brain().pib();
  for (const auto& replica : sys.replicas()) {
    EXPECT_GT(replica->pib_version(), 0u);
    EXPECT_EQ(replica->pib().pair_count(), primary.pair_count());
    // Spot-check candidate equality for a few pairs.
    int checked = 0;
    for (const auto& [src, dst] : primary.pairs()) {
      if (++checked > 12) break;
      const auto* a = primary.find(src, dst);
      const auto* b = replica->pib().find(src, dst);
      ASSERT_NE(b, nullptr);
      EXPECT_EQ(*a, *b);
    }
  }
}

TEST(Replicas, SibUpdatesPropagate) {
  LiveNetSystem sys(replica_config(1));
  client::Broadcaster bcast(&sys.network(), 3, one_version());
  sys.build_once();
  sys.start();
  const auto producer =
      sys.attach_client(&bcast, sys.geo().sample_site(0));
  bcast.start(producer, {9});
  sys.loop().run_until(2 * kSec);
  ASSERT_EQ(sys.replicas().size(), 1u);
  EXPECT_EQ(sys.replicas()[0]->sib().producer_of(9), producer);

  bcast.stop();
  sys.loop().run_until(4 * kSec);
  EXPECT_EQ(sys.replicas()[0]->sib().producer_of(9), sim::kNoNode);
}

TEST(Replicas, LookupsServedByReplicaNotPrimary) {
  LiveNetSystem sys(replica_config(2));
  client::ClientMetrics qoe;
  client::Broadcaster bcast(&sys.network(), 3, one_version());
  sys.build_once();
  sys.start();
  bcast.start(sys.attach_client(&bcast, sys.geo().sample_site(0)), {1});
  sys.loop().run_until(8 * kSec);

  client::Viewer viewer(&sys.network(), &qoe);
  const auto consumer =
      sys.attach_client(&viewer, sys.geo().sample_site(1));
  viewer.start_view(consumer, 1);
  sys.loop().run_until(16 * kSec);

  // The lookup was answered by a replica; the primary saw none.
  std::size_t replica_requests = 0;
  for (const auto& r : sys.replicas()) {
    replica_requests += r->metrics().path_requests.size();
  }
  EXPECT_GE(replica_requests, 1u);
  EXPECT_EQ(sys.brain().metrics().path_requests.size(), 0u);

  // And the view works end to end.
  EXPECT_GT(qoe.records().front().frames_displayed, 100u);
  const auto& sess = sys.sessions().sessions().front();
  EXPECT_GE(sess.path_length, 0);
  EXPECT_NE(sess.path_response_rtt, kNever);
}

TEST(Replicas, OverloadMarksMirrorToReplicas) {
  SystemConfig cfg = replica_config(1);
  cfg.overlay_node.report_interval = 1 * kHour;  // no auto-clearing
  LiveNetSystem sys(cfg);
  sys.build_once();
  sys.start();
  sys.loop().run_until(2 * kSec);

  const auto victim = sys.overlay_node_ids()[3];
  auto alarm = sim::make_message<overlay::OverloadAlarm>();
  alarm->node = victim;
  alarm->node_load = 0.95;
  sys.network().send(victim, sys.brain().node_id(), alarm);
  sys.loop().run_until(3 * kSec);

  EXPECT_TRUE(sys.brain().pib().node_overloaded(victim));
  ASSERT_EQ(sys.replicas().size(), 1u);
  EXPECT_TRUE(sys.replicas()[0]->pib().node_overloaded(victim));
}

}  // namespace
}  // namespace livenet
