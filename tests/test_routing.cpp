#include <gtest/gtest.h>

#include <set>

#include "brain/global_routing.h"
#include "brain/ksp.h"
#include "brain/routing_graph.h"

namespace livenet::brain {
namespace {

TEST(Weights, PenaltyRangesFromOneToTwo) {
  const WeightParams p;
  EXPECT_NEAR(utilization_penalty(0.0, p), 1.0, 0.01);
  EXPECT_NEAR(utilization_penalty(1.0, p), 2.0, 0.01);
  EXPECT_NEAR(utilization_penalty(0.8, p), 1.5, 0.01);  // beta midpoint
}

TEST(Weights, PenaltySharpAroundBeta) {
  const WeightParams p;
  // alpha=0.5 in percent units: 10 points below beta ~ 1, above ~ 2.
  EXPECT_LT(utilization_penalty(0.70, p), 1.01);
  EXPECT_GT(utilization_penalty(0.90, p), 1.99);
}

TEST(Weights, LinkWeightExpectedRttWithLoss) {
  LinkState ls;
  ls.rtt = 100 * kMs;
  ls.loss_rate = 0.1;
  ls.utilization = 0.0;
  const WeightParams p;
  // Expected RTT = 0.1*200ms + 0.9*100ms = 110ms, penalty ~ 1.
  EXPECT_NEAR(link_weight(ls, 0.0, 0.0, p),
              110.0 * static_cast<double>(kMs), 2000.0);
}

TEST(Weights, NodeUtilizationDominatesLinkUtilization) {
  LinkState ls;
  ls.rtt = 100 * kMs;
  ls.loss_rate = 0.0;
  ls.utilization = 0.1;
  const WeightParams p;
  const double calm = link_weight(ls, 0.1, 0.1, p);
  const double hot = link_weight(ls, 0.95, 0.1, p);
  EXPECT_GT(hot, 1.8 * calm);
}

RoutingGraph diamond() {
  //     1
  //   /   \
  //  0     3     plus a direct slow edge 0->3
  //   \   /
  //     2
  RoutingGraph g(4);
  g.set_weight(0, 1, 10);
  g.set_weight(1, 3, 10);
  g.set_weight(0, 2, 12);
  g.set_weight(2, 3, 12);
  g.set_weight(0, 3, 50);
  return g;
}

TEST(Dijkstra, FindsShortestPath) {
  const auto p = shortest_path(diamond(), 0, 3);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->nodes, (std::vector<std::size_t>{0, 1, 3}));
  EXPECT_DOUBLE_EQ(p->cost, 20.0);
}

TEST(Dijkstra, RespectsBannedNodes) {
  std::vector<bool> banned(4, false);
  banned[1] = true;
  const auto p = shortest_path(diamond(), 0, 3, &banned);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->nodes, (std::vector<std::size_t>{0, 2, 3}));
}

TEST(Dijkstra, RespectsBannedEdges) {
  std::vector<std::pair<std::size_t, std::size_t>> banned = {{0, 1}};
  const auto p = shortest_path(diamond(), 0, 3, nullptr, &banned);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->nodes, (std::vector<std::size_t>{0, 2, 3}));
}

TEST(Dijkstra, NoPathReturnsNullopt) {
  RoutingGraph g(3);
  g.set_weight(0, 1, 1);
  EXPECT_FALSE(shortest_path(g, 0, 2).has_value());
}

TEST(Dijkstra, TrivialSelfPath) {
  const auto p = shortest_path(diamond(), 2, 2);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->nodes.size(), 1u);
  EXPECT_DOUBLE_EQ(p->cost, 0.0);
}

// The all-pairs k = 1 fast path reads paths off one tree per source;
// it must agree with the per-pair Dijkstra on every pair, including
// tie-heavy random graphs (equal-cost path choice is part of the
// contract — routing must not change when the fast path kicks in).
TEST(Dijkstra, TreeMatchesPerPairOnRandomGraphs) {
  std::uint64_t state = 12345;
  auto next = [&state]() {  // xorshift: deterministic across platforms
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 3 + next() % 12;
    RoutingGraph g(n);
    for (std::size_t a = 0; a < n; ++a) {
      for (std::size_t b = 0; b < n; ++b) {
        if (a == b || next() % 4 == 0) continue;  // ~25% edges missing
        // Small integer weights force plenty of equal-cost ties.
        g.set_weight(a, b, static_cast<double>(1 + next() % 4));
      }
    }
    for (std::size_t a = 0; a < n; ++a) {
      const auto tree = shortest_path_tree(g, a);
      for (std::size_t b = 0; b < n; ++b) {
        if (a == b) continue;
        const auto direct = shortest_path(g, a, b);
        const auto via_tree = tree.path_to(a, b);
        ASSERT_EQ(direct.has_value(), via_tree.has_value())
            << "trial " << trial << " pair " << a << "->" << b;
        if (!direct.has_value()) continue;
        EXPECT_EQ(direct->nodes, via_tree->nodes)
            << "trial " << trial << " pair " << a << "->" << b;
        EXPECT_DOUBLE_EQ(direct->cost, via_tree->cost);
      }
    }
  }
}

TEST(GlobalRoutingK1, TreeFastPathInstallsSamePathsAsYen) {
  // With k = 1 the recompute must install exactly what per-pair Yen
  // k = 1 installs (the fast path is an optimization, not a policy
  // change).
  const RoutingGraph g = diamond();
  for (std::size_t a = 0; a < g.size(); ++a) {
    for (std::size_t b = 0; b < g.size(); ++b) {
      if (a == b) continue;
      const auto yen = k_shortest_paths(g, a, b, 1);
      const auto tree = shortest_path_tree(g, a);
      const auto p = tree.path_to(a, b);
      ASSERT_EQ(yen.empty(), !p.has_value());
      if (!yen.empty()) EXPECT_EQ(yen[0].nodes, p->nodes);
    }
  }
}

TEST(Yen, ReturnsKDistinctPathsInCostOrder) {
  const auto paths = k_shortest_paths(diamond(), 0, 3, 3);
  ASSERT_EQ(paths.size(), 3u);
  EXPECT_DOUBLE_EQ(paths[0].cost, 20.0);
  EXPECT_DOUBLE_EQ(paths[1].cost, 24.0);
  EXPECT_DOUBLE_EQ(paths[2].cost, 50.0);
  EXPECT_EQ(paths[0].nodes, (std::vector<std::size_t>{0, 1, 3}));
  EXPECT_EQ(paths[2].nodes, (std::vector<std::size_t>{0, 3}));
}

TEST(Yen, PathsAreLoopless) {
  RoutingGraph g(5);
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 5; ++j) {
      if (i != j) g.set_weight(i, j, 1.0 + static_cast<double>((i * 7 + j) % 5));
    }
  }
  const auto paths = k_shortest_paths(g, 0, 4, 5);
  for (const auto& p : paths) {
    std::set<std::size_t> seen(p.nodes.begin(), p.nodes.end());
    EXPECT_EQ(seen.size(), p.nodes.size());
  }
}

TEST(Yen, FewerPathsWhenGraphIsSparse) {
  RoutingGraph g(3);
  g.set_weight(0, 1, 1);
  g.set_weight(1, 2, 1);
  const auto paths = k_shortest_paths(g, 0, 2, 3);
  EXPECT_EQ(paths.size(), 1u);
}

GlobalDiscovery make_view(int n, Duration rtt = 20 * kMs) {
  GlobalDiscovery view;
  for (int a = 0; a < n; ++a) {
    overlay::NodeStateReport rep;
    rep.node = a;
    rep.node_load = 0.1;
    for (int b = 0; b < n; ++b) {
      if (a == b) continue;
      overlay::LinkReport lr;
      lr.to = b;
      lr.rtt = rtt + static_cast<Duration>(a + b) * kMs;
      lr.loss_rate = 0.001;
      lr.utilization = 0.1;
      rep.links.push_back(lr);
    }
    view.on_report(rep, 0, nullptr);
  }
  return view;
}

TEST(GlobalRouting, InstallsKPathsPerPair) {
  auto view = make_view(5);
  GlobalRouting routing;
  Pib pib;
  const auto res = routing.recompute(view, {0, 1, 2, 3, 4}, {}, &pib);
  EXPECT_EQ(res.pairs, 20u);
  const auto* paths = pib.find(0, 4);
  ASSERT_NE(paths, nullptr);
  EXPECT_EQ(paths->size(), 3u);
  // All paths obey the hop bound.
  for (const auto& p : *paths) {
    EXPECT_LE(overlay::path_length(p), 3);
  }
}

TEST(GlobalRouting, OverloadedRelayExcluded) {
  auto view = make_view(4);
  // Make node 1 overloaded.
  overlay::NodeStateReport rep;
  rep.node = 1;
  rep.node_load = 0.95;
  for (int b = 0; b < 4; ++b) {
    if (b == 1) continue;
    overlay::LinkReport lr;
    lr.to = b;
    lr.rtt = 20 * kMs;
    lr.loss_rate = 0.001;
    lr.utilization = 0.1;
    rep.links.push_back(lr);
  }
  view.on_report(rep, 0, nullptr);

  GlobalRouting routing;
  Pib pib;
  routing.recompute(view, {0, 1, 2, 3}, {}, &pib);
  const auto* paths = pib.find(0, 3);
  ASSERT_NE(paths, nullptr);
  for (const auto& p : *paths) {
    for (std::size_t i = 1; i + 1 < p.size(); ++i) {
      EXPECT_NE(p[i], 1);  // node 1 never appears as a relay
    }
  }
}

TEST(GlobalRouting, LastResortInstalledViaReservedRelay) {
  auto view = make_view(4);
  // Node 3 (reserved) reports links; routing over {0,1,2} only.
  GlobalRouting routing;
  Pib pib;
  routing.recompute(view, {0, 1, 2}, {3}, &pib);
  const overlay::Path lr = pib.last_resort(0, 2);
  ASSERT_EQ(lr.size(), 3u);
  EXPECT_EQ(lr[1], 3);  // via the reserved node, 2 hops
}

TEST(Pib, InvalidationFiltersPaths) {
  Pib pib;
  pib.set_paths(0, 2, {{0, 1, 2}, {0, 3, 2}});
  EXPECT_EQ(pib.valid_paths(0, 2).size(), 2u);
  pib.mark_node_overloaded(1);
  const auto valid = pib.valid_paths(0, 2);
  ASSERT_EQ(valid.size(), 1u);
  EXPECT_EQ(valid[0][1], 3);
  pib.clear_node_overloaded(1);
  EXPECT_EQ(pib.valid_paths(0, 2).size(), 2u);
}

TEST(Pib, EndpointOverloadDoesNotInvalidate) {
  Pib pib;
  pib.set_paths(0, 2, {{0, 1, 2}});
  pib.mark_node_overloaded(0);
  pib.mark_node_overloaded(2);
  EXPECT_EQ(pib.valid_paths(0, 2).size(), 1u);
}

TEST(Pib, LinkOverloadInvalidates) {
  Pib pib;
  pib.set_paths(0, 2, {{0, 1, 2}});
  pib.mark_link_overloaded(1, 2);
  EXPECT_TRUE(pib.valid_paths(0, 2).empty());
}

}  // namespace
}  // namespace livenet::brain
