// Differential tests for the optimized Brain routing pipeline: the
// CSR/workspace/batched-KSP implementation must be *bit-identical* to
// the preserved reference implementation — same paths, same order, same
// double costs — and the incremental recompute must skip exactly the
// sources the dirty set allows.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "brain/global_discovery.h"
#include "brain/global_routing.h"
#include "brain/ksp.h"
#include "brain/pib.h"
#include "util/rng.h"

namespace livenet::brain {
namespace {

struct ViewSpec {
  int n = 12;           ///< regular overlay nodes (ids 0..n-1)
  int lr = 0;           ///< extra last-resort relays (ids n..n+lr-1)
  double link_prob = 1.0;
  double util_lo = 0.0, util_hi = 0.7;
  double load_lo = 0.05, load_hi = 0.6;
  std::uint64_t seed = 1;
};

GlobalDiscovery make_view(const ViewSpec& s) {
  Rng rng(s.seed);
  GlobalDiscovery view;
  const int total = s.n + s.lr;
  for (int a = 0; a < total; ++a) {
    overlay::NodeStateReport rep;
    rep.node = a;
    rep.node_load = rng.uniform(s.load_lo, s.load_hi);
    for (int b = 0; b < total; ++b) {
      if (a == b) continue;
      // Relay links always exist (they are the safety net); regular
      // links thin out with link_prob.
      const bool relay_edge = a >= s.n || b >= s.n;
      if (!relay_edge && rng.uniform(0.0, 1.0) > s.link_prob) continue;
      overlay::LinkReport lr;
      lr.to = b;
      lr.rtt = static_cast<Duration>(rng.uniform(10.0, 300.0) *
                                     static_cast<double>(kMs));
      lr.loss_rate = rng.uniform(0.0, 0.01);
      lr.utilization = rng.uniform(s.util_lo, s.util_hi);
      rep.links.push_back(lr);
    }
    view.on_report(rep, 0, nullptr);
  }
  return view;
}

std::vector<sim::NodeId> id_range(int lo, int hi) {
  std::vector<sim::NodeId> out;
  for (int i = lo; i < hi; ++i) out.push_back(i);
  return out;
}

void expect_paths_equal(const std::vector<WeightedPath>& got,
                        const std::vector<WeightedPath>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].nodes, want[i].nodes) << "path " << i;
    EXPECT_EQ(got[i].cost, want[i].cost) << "path " << i;  // exact bits
  }
}

void expect_pib_routes_equal(const Pib& got, const Pib& want) {
  auto gp = got.pairs();
  auto wp = want.pairs();
  std::sort(gp.begin(), gp.end());
  std::sort(wp.begin(), wp.end());
  ASSERT_EQ(gp, wp);
  for (const auto& [src, dst] : wp) {
    const auto* g = got.find(src, dst);
    const auto* w = want.find(src, dst);
    ASSERT_NE(g, nullptr);
    ASSERT_NE(w, nullptr);
    EXPECT_EQ(*g, *w) << "pair " << src << "->" << dst;
    EXPECT_EQ(got.last_resort(src, dst), want.last_resort(src, dst))
        << "fallback " << src << "->" << dst;
  }
}

// ---------------------------------------------------------------------------
// KSP layer.

TEST(KspDifferential, BatchedMatchesReferenceOnRandomGraphs) {
  for (const double link_prob : {1.0, 0.5}) {
    for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
      ViewSpec spec;
      spec.n = 14;
      spec.link_prob = link_prob;
      spec.seed = seed;
      const GlobalDiscovery view = make_view(spec);
      const auto nodes = id_range(0, spec.n);
      const RoutingGraph g = GlobalRouting().build_graph(view, nodes);
      for (std::size_t a = 0; a < nodes.size(); ++a) {
        for (std::size_t b = 0; b < nodes.size(); ++b) {
          if (a == b) continue;
          expect_paths_equal(k_shortest_paths(g, a, b, 3),
                             k_shortest_paths_reference(g, a, b, 3));
        }
      }
    }
  }
}

TEST(KspDifferential, SolverReuseAcrossDestinationsMatchesReference) {
  ViewSpec spec;
  spec.n = 16;
  spec.link_prob = 0.6;
  spec.seed = 9;
  const GlobalDiscovery view = make_view(spec);
  const auto nodes = id_range(0, spec.n);
  const RoutingGraph g = GlobalRouting().build_graph(view, nodes);
  // One solver reused for every destination — the production shape.
  KspSolver solver(g);
  for (std::size_t a = 0; a < nodes.size(); ++a) {
    solver.set_source(a);
    std::vector<WeightedPath> got;
    for (std::size_t b = 0; b < nodes.size(); ++b) {
      if (a == b) continue;
      solver.k_shortest(b, 3, &got);
      expect_paths_equal(got, k_shortest_paths_reference(g, a, b, 3));
    }
  }
}

TEST(KspDifferential, HigherKAndShortestPathMatchReference) {
  ViewSpec spec;
  spec.n = 10;
  spec.seed = 4;
  const GlobalDiscovery view = make_view(spec);
  const auto nodes = id_range(0, spec.n);
  const RoutingGraph g = GlobalRouting().build_graph(view, nodes);
  expect_paths_equal(k_shortest_paths(g, 0, 9, 6),
                     k_shortest_paths_reference(g, 0, 9, 6));
  // Banned nodes/edges through the public single-pair API.
  std::vector<bool> banned_nodes(g.size(), false);
  banned_nodes[3] = true;
  std::vector<std::pair<std::size_t, std::size_t>> banned_edges{{0, 9},
                                                                {4, 9}};
  const auto got = shortest_path(g, 0, 9, &banned_nodes, &banned_edges);
  const auto want =
      shortest_path_reference(g, 0, 9, &banned_nodes, &banned_edges);
  ASSERT_EQ(got.has_value(), want.has_value());
  if (got.has_value()) {
    EXPECT_EQ(got->nodes, want->nodes);
    EXPECT_EQ(got->cost, want->cost);
  }
}

TEST(KspDifferential, TreeMatchesReferenceBitForBit) {
  for (const std::uint64_t seed : {5ull, 6ull}) {
    ViewSpec spec;
    spec.n = 18;
    spec.link_prob = 0.4;
    spec.seed = seed;
    const GlobalDiscovery view = make_view(spec);
    const auto nodes = id_range(0, spec.n);
    const RoutingGraph g = GlobalRouting().build_graph(view, nodes);
    for (std::size_t src = 0; src < nodes.size(); ++src) {
      const ShortestPathTree got = shortest_path_tree(g, src);
      const ShortestPathTree want = shortest_path_tree_reference(g, src);
      ASSERT_EQ(got.dist.size(), want.dist.size());
      for (std::size_t v = 0; v < got.dist.size(); ++v) {
        EXPECT_EQ(got.dist[v], want.dist[v]) << "dist " << src << "->" << v;
        EXPECT_EQ(got.prev[v], want.prev[v]) << "prev " << src << "->" << v;
      }
    }
  }
}

TEST(KspTieBreak, EqualCostPathsComeBackInDeterministicOrder) {
  // Three exactly equal-cost routes 0->3: via 1, via 2, and direct.
  RoutingGraph g(4);
  g.set_weight(0, 1, 10.0);
  g.set_weight(1, 3, 10.0);
  g.set_weight(0, 2, 10.0);
  g.set_weight(2, 3, 10.0);
  g.set_weight(0, 3, 20.0);
  const auto first = k_shortest_paths(g, 0, 3, 3);
  const auto second = k_shortest_paths(g, 0, 3, 3);
  ASSERT_EQ(first.size(), 3u);
  for (const auto& p : first) EXPECT_EQ(p.cost, 20.0);
  // Deterministic: identical across runs and identical to the oracle.
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].nodes, second[i].nodes);
  }
  expect_paths_equal(first, k_shortest_paths_reference(g, 0, 3, 3));
  // The shared tie-break discipline: strict-improvement relaxation
  // keeps the first route found (the direct edge, relaxed in ascending
  // neighbor order), then spur candidates tie-break by lowest index.
  EXPECT_EQ(first[0].nodes, (std::vector<std::size_t>{0, 3}));
  EXPECT_EQ(first[1].nodes, (std::vector<std::size_t>{0, 1, 3}));
  EXPECT_EQ(first[2].nodes, (std::vector<std::size_t>{0, 2, 3}));
}

// ---------------------------------------------------------------------------
// Full-pipeline PIB differential.

struct PibCase {
  const char* name;
  ViewSpec spec;
  std::size_t k = 3;
};

TEST(PibDifferential, RecomputeInstallsIdenticalPibToReference) {
  std::vector<PibCase> cases;
  {
    PibCase c{"dense", ViewSpec{}, 3};
    c.spec.n = 12;
    c.spec.seed = 21;
    cases.push_back(c);
  }
  {
    PibCase c{"sparse", ViewSpec{}, 3};
    c.spec.n = 14;
    c.spec.link_prob = 0.35;
    c.spec.seed = 22;
    cases.push_back(c);
  }
  {
    PibCase c{"hot", ViewSpec{}, 3};  // overloads trip constraints (i)/(ii)
    c.spec.n = 12;
    c.spec.util_lo = 0.5;
    c.spec.util_hi = 0.95;
    c.spec.load_lo = 0.4;
    c.spec.load_hi = 0.95;
    c.spec.lr = 2;
    c.spec.seed = 23;
    cases.push_back(c);
  }
  {
    PibCase c{"k1", ViewSpec{}, 1};
    c.spec.n = 16;
    c.spec.link_prob = 0.5;
    c.spec.seed = 24;
    cases.push_back(c);
  }
  for (const auto& c : cases) {
    SCOPED_TRACE(c.name);
    const GlobalDiscovery view = make_view(c.spec);
    const auto nodes = id_range(0, c.spec.n);
    const auto relays = id_range(c.spec.n, c.spec.n + c.spec.lr);
    GlobalRoutingConfig cfg;
    cfg.k = c.k;
    GlobalRouting optimized(cfg);
    GlobalRouting reference(cfg);
    Pib got, want;
    const auto res = optimized.recompute(view, nodes, relays, &got);
    const auto ref = reference.recompute_reference(view, nodes, relays, &want);
    EXPECT_EQ(res.pairs, ref.pairs);
    EXPECT_EQ(res.paths_installed, ref.paths_installed);
    EXPECT_EQ(res.last_resort_pairs, ref.last_resort_pairs);
    expect_pib_routes_equal(got, want);
  }
}

// ---------------------------------------------------------------------------
// Incremental recompute.

/// Hand-built symmetric view: every pair linked at `rtt_ms` except the
/// overrides; loads/utilizations low so no constraint interferes.
void report_node(GlobalDiscovery* view, int node, int total, double load,
                 const std::vector<std::pair<int, double>>& rtt_ms_overrides,
                 double default_rtt_ms) {
  overlay::NodeStateReport rep;
  rep.node = node;
  rep.node_load = load;
  for (int b = 0; b < total; ++b) {
    if (b == node) continue;
    double ms = default_rtt_ms;
    for (const auto& [to, v] : rtt_ms_overrides) {
      if (to == b) ms = v;
    }
    overlay::LinkReport lr;
    lr.to = b;
    lr.rtt = static_cast<Duration>(ms * static_cast<double>(kMs));
    lr.loss_rate = 0.0;
    lr.utilization = 0.1;
    rep.links.push_back(lr);
  }
  view->on_report(rep, 0, nullptr);
}

TEST(Incremental, UnchangedViewSkipsEverySource) {
  ViewSpec spec;
  spec.n = 10;
  spec.seed = 31;
  const GlobalDiscovery view = make_view(spec);
  const auto nodes = id_range(0, spec.n);
  GlobalRoutingConfig cfg;
  cfg.incremental = true;
  GlobalRouting routing(cfg);
  Pib pib;
  const auto res1 = routing.recompute(view, nodes, {}, &pib);
  EXPECT_TRUE(res1.full_refresh);
  const auto res2 = routing.recompute(view, nodes, {}, &pib);
  EXPECT_FALSE(res2.full_refresh);
  EXPECT_EQ(res2.sources_solved, 0u);
  EXPECT_EQ(res2.pairs_skipped,
            static_cast<std::size_t>(spec.n) * (spec.n - 1));
  // Skipping everything must leave the PIB identical to a full solve.
  GlobalRouting oracle;
  Pib want;
  oracle.recompute_reference(view, nodes, {}, &want);
  expect_pib_routes_equal(pib, want);
}

TEST(Incremental, DirtyLinkResolvesOnlySourcesUsingIt) {
  const int n = 4;
  GlobalDiscovery view;
  // All links 100ms, except a 10ms shortcut 0->1.
  for (int a = 0; a < n; ++a) {
    report_node(&view, a, n, 0.1, a == 0 ? std::vector<std::pair<int, double>>{{1, 10.0}}
                                         : std::vector<std::pair<int, double>>{},
                100.0);
  }
  GlobalRoutingConfig cfg;
  cfg.incremental = true;
  GlobalRouting routing(cfg);
  Pib pib;
  routing.recompute(view, id_range(0, n), {}, &pib);
  // The shortcut collapses to 300ms: only link (0,1) goes dirty.
  // Sources 0, 2, 3 all have installed paths using that edge ([0,1]
  // and the k=3 alternates [2,0,1] / [3,0,1]); source 1 cannot — a
  // loopless path from 1 never traverses an edge *into* 1 — so it is
  // the one source the dirty set skips.
  report_node(&view, 0, n, 0.1, {{1, 300.0}}, 100.0);
  const auto res = routing.recompute(view, id_range(0, n), {}, &pib);
  EXPECT_FALSE(res.full_refresh);
  EXPECT_EQ(res.sources_solved, 3u);
  EXPECT_EQ(res.sources_skipped, 1u);
  // Since the skipped source's candidates cannot touch the re-weighted
  // edge, the incremental PIB matches a from-scratch reference solve.
  GlobalRouting oracle;
  Pib want;
  oracle.recompute_reference(view, id_range(0, n), {}, &want);
  expect_pib_routes_equal(pib, want);
}

TEST(Incremental, DirtyNodeResolvesEverySourceVisitingIt) {
  const int n = 4;
  GlobalDiscovery view;
  for (int a = 0; a < n; ++a) report_node(&view, a, n, 0.1, {}, 100.0);
  GlobalRoutingConfig cfg;
  cfg.incremental = true;
  GlobalRouting routing(cfg);
  Pib pib;
  routing.recompute(view, id_range(0, n), {}, &pib);
  // Node 2's load jumps: every source has a pair targeting node 2, so
  // every source is stale.
  report_node(&view, 2, n, 0.6, {}, 100.0);
  const auto res = routing.recompute(view, id_range(0, n), {}, &pib);
  EXPECT_FALSE(res.full_refresh);
  EXPECT_EQ(res.sources_solved, static_cast<std::size_t>(n));
  GlobalRouting oracle;
  Pib want;
  oracle.recompute_reference(view, id_range(0, n), {}, &want);
  expect_pib_routes_equal(pib, want);
}

TEST(Incremental, TopologyChangeAndCadenceForceFullRefresh) {
  ViewSpec spec;
  spec.n = 8;
  spec.seed = 41;
  const GlobalDiscovery view = make_view(spec);
  GlobalRoutingConfig cfg;
  cfg.incremental = true;
  cfg.full_refresh_every = 2;
  GlobalRouting routing(cfg);
  Pib pib;
  EXPECT_TRUE(routing.recompute(view, id_range(0, 8), {}, &pib).full_refresh);
  EXPECT_FALSE(routing.recompute(view, id_range(0, 8), {}, &pib).full_refresh);
  // Cadence: the second incremental-eligible cycle is promoted to full.
  EXPECT_TRUE(routing.recompute(view, id_range(0, 8), {}, &pib).full_refresh);
  // Topology change: node set shrinks -> full, and stale pairs age out.
  const auto res = routing.recompute(view, id_range(0, 7), {}, &pib);
  EXPECT_TRUE(res.full_refresh);
  EXPECT_EQ(pib.pair_count(), 7u * 6u);
}

// ---------------------------------------------------------------------------
// Discovery dirty tracking.

TEST(DirtyTracking, ThresholdsGateMarksAndSeqFilters) {
  GlobalDiscovery view;
  const int n = 3;
  for (int a = 0; a < n; ++a) report_node(&view, a, n, 0.2, {}, 100.0);
  const std::uint64_t after_seed = view.dirty_seq();
  EXPECT_GT(after_seed, 0u);  // first sightings are dirty

  // Identical re-report: nothing moves.
  report_node(&view, 0, n, 0.2, {}, 100.0);
  EXPECT_EQ(view.dirty_seq(), after_seed);

  // Sub-threshold wiggles: 1% RTT, 0.01 load.
  report_node(&view, 0, n, 0.21, {}, 101.0);
  EXPECT_EQ(view.dirty_seq(), after_seed);

  // Above-threshold RTT move dirties exactly the moved links.
  report_node(&view, 0, n, 0.21, {{1, 200.0}}, 101.0);
  std::vector<std::pair<sim::NodeId, sim::NodeId>> links;
  std::vector<sim::NodeId> dnodes;
  view.dirty_since(after_seed, &links, &dnodes);
  ASSERT_EQ(links.size(), 1u);
  EXPECT_EQ(links[0], (std::pair<sim::NodeId, sim::NodeId>{0, 1}));
  EXPECT_TRUE(dnodes.empty());

  // Load move beyond 0.05 dirties the node.
  const std::uint64_t before_load = view.dirty_seq();
  report_node(&view, 1, n, 0.5, {}, 100.0);
  links.clear();
  dnodes.clear();
  view.dirty_since(before_load, &links, &dnodes);
  ASSERT_EQ(dnodes.size(), 1u);
  EXPECT_EQ(dnodes[0], 1);

  // Alarms always mark.
  const std::uint64_t before_alarm = view.dirty_seq();
  overlay::OverloadAlarm alarm;
  alarm.node = 2;
  alarm.node_load = 0.95;
  alarm.overloaded_links = {0};
  view.on_alarm(alarm, nullptr);
  links.clear();
  dnodes.clear();
  view.dirty_since(before_alarm, &links, &dnodes);
  EXPECT_EQ(dnodes.size(), 1u);
  EXPECT_EQ(links.size(), 1u);
}

TEST(PibBuffer, SwapRoutesPreservesOverloadMarks) {
  Pib live, scratch;
  live.mark_node_overloaded(7);
  live.set_paths(1, 2, {{1, 2}});
  scratch.set_paths(1, 2, {{1, 3, 2}});
  scratch.set_last_resort(1, 2, {1, 9, 2});
  live.swap_routes(&scratch);
  EXPECT_TRUE(live.node_overloaded(7));
  ASSERT_NE(live.find(1, 2), nullptr);
  EXPECT_EQ(*live.find(1, 2),
            (std::vector<overlay::Path>{{1, 3, 2}}));
  EXPECT_EQ(live.last_resort(1, 2), (overlay::Path{1, 9, 2}));
  ASSERT_NE(scratch.find(1, 2), nullptr);
  EXPECT_EQ(*scratch.find(1, 2), (std::vector<overlay::Path>{{1, 2}}));
}

TEST(CsrView, MatchesDenseMatrixAndTracksMutation) {
  ViewSpec spec;
  spec.n = 12;
  spec.link_prob = 0.5;
  spec.seed = 51;
  const GlobalDiscovery view = make_view(spec);
  const auto nodes = id_range(0, spec.n);
  RoutingGraph g = GlobalRouting().build_graph(view, nodes);
  auto check = [&] {
    const auto& csr = g.csr();
    std::size_t edges = 0;
    for (std::size_t a = 0; a < g.size(); ++a) {
      std::uint32_t prev_col = 0;
      bool first = true;
      for (std::uint32_t e = csr.row_start[a]; e < csr.row_start[a + 1];
           ++e) {
        const std::uint32_t b = csr.col[e];
        if (!first) EXPECT_GT(b, prev_col);  // ascending columns
        first = false;
        prev_col = b;
        EXPECT_TRUE(g.has_edge(a, b));
        EXPECT_EQ(csr.weight[e], g.weight(a, b));
        ++edges;
      }
    }
    EXPECT_EQ(edges, csr.edge_count());
    std::size_t dense_edges = 0;
    for (std::size_t a = 0; a < g.size(); ++a) {
      for (std::size_t b = 0; b < g.size(); ++b) {
        if (g.has_edge(a, b)) ++dense_edges;
      }
    }
    EXPECT_EQ(dense_edges, csr.edge_count());
  };
  check();
  g.set_weight(0, 1, 123.0);  // mutation invalidates the cached view
  g.set_weight(2, 3, RoutingGraph::kNoEdge);
  check();
  EXPECT_EQ(g.weight(0, 1), 123.0);
  EXPECT_FALSE(g.has_edge(2, 3));
}

// ---------------------------------------------------------------------------
// Parallel Brain: the thread-pooled fan-out must be byte-identical to
// the threads=1 inline path (and hence, transitively, to the preserved
// reference pipeline) for every thread count — the ordered merge is the
// only thing standing between worker scheduling and the installed PIB.

TEST(ThreadSweep, FullRecomputeBitIdenticalAcrossThreadCounts) {
  std::vector<PibCase> cases;
  {
    PibCase c{"dense", ViewSpec{}, 3};
    c.spec.n = 12;
    c.spec.seed = 61;
    cases.push_back(c);
  }
  {
    PibCase c{"sparse+relays", ViewSpec{}, 3};
    c.spec.n = 14;
    c.spec.link_prob = 0.35;
    c.spec.lr = 2;
    c.spec.seed = 62;
    cases.push_back(c);
  }
  {
    PibCase c{"hot", ViewSpec{}, 3};  // overloads exercise the
    c.spec.n = 12;                    // last-resort path of the merge
    c.spec.util_lo = 0.5;
    c.spec.util_hi = 0.95;
    c.spec.load_lo = 0.4;
    c.spec.load_hi = 0.95;
    c.spec.lr = 2;
    c.spec.seed = 63;
    cases.push_back(c);
  }
  for (const auto& c : cases) {
    SCOPED_TRACE(c.name);
    const GlobalDiscovery view = make_view(c.spec);
    const auto nodes = id_range(0, c.spec.n);
    const auto relays = id_range(c.spec.n, c.spec.n + c.spec.lr);
    GlobalRoutingConfig cfg;
    cfg.k = c.k;
    GlobalRouting reference(cfg);
    Pib want;
    const auto ref = reference.recompute_reference(view, nodes, relays, &want);
    for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      cfg.threads = threads;
      GlobalRouting routing(cfg);
      Pib got;
      const auto res = routing.recompute(view, nodes, relays, &got);
      EXPECT_EQ(res.pairs, ref.pairs);
      EXPECT_EQ(res.paths_installed, ref.paths_installed);
      EXPECT_EQ(res.last_resort_pairs, ref.last_resort_pairs);
      expect_pib_routes_equal(got, want);
    }
  }
}

TEST(ThreadSweep, IncrementalChurnSequenceBitIdenticalAcrossThreadCounts) {
  // One long-lived module per thread count, each fed an identical view
  // and an identical churn sequence: every cycle's installed PIB (and
  // its skip/solve accounting) must match the threads=1 instance —
  // including cycles where the dirty set prunes most sources, a
  // no-change cycle that skips everything, and the cadence-forced full
  // refresh mid-sequence.
  const int n = 12;
  const std::vector<std::size_t> sweep{1, 2, 4, 8};
  ViewSpec spec;
  spec.n = n;
  spec.link_prob = 0.6;
  spec.seed = 64;
  GlobalRoutingConfig cfg;
  cfg.incremental = true;
  cfg.full_refresh_every = 4;  // forces a full refresh inside the run
  std::vector<GlobalDiscovery> views;
  std::vector<GlobalRouting> routings;
  std::vector<Pib> pibs(sweep.size());
  for (const std::size_t threads : sweep) {
    views.push_back(make_view(spec));
    cfg.threads = threads;
    routings.emplace_back(cfg);
  }
  const auto nodes = id_range(0, n);
  bool saw_cadence_refresh = false;
  bool saw_pruned_cycle = false;
  for (int cycle = 0; cycle < 8; ++cycle) {
    SCOPED_TRACE("cycle=" + std::to_string(cycle));
    // Deterministic churn, applied identically to every instance (so
    // the dirty sets agree bit-for-bit): two links of one node move
    // each cycle, except every third cycle which leaves the view
    // untouched to exercise the skip-everything path.
    if (cycle > 0 && cycle % 3 != 0) {
      const int victim = cycle % n;
      const double ms = 15.0 + 37.0 * cycle;
      for (auto& view : views) {
        overlay::NodeStateReport rep;
        rep.node = victim;
        rep.node_load = view.node_load(victim);
        for (int b = 1; b <= 2; ++b) {
          overlay::LinkReport lr;
          lr.to = (victim + b) % n;
          lr.rtt = static_cast<Duration>(ms * static_cast<double>(kMs));
          lr.loss_rate = 0.0005;
          lr.utilization = 0.3;
          rep.links.push_back(lr);
        }
        view.on_report(rep, 0, nullptr);
      }
    }
    std::vector<GlobalRouting::Result> results;
    for (std::size_t i = 0; i < sweep.size(); ++i) {
      results.push_back(routings[i].recompute(views[i], nodes, {}, &pibs[i]));
    }
    for (std::size_t i = 1; i < sweep.size(); ++i) {
      SCOPED_TRACE("threads=" + std::to_string(sweep[i]));
      EXPECT_EQ(results[i].full_refresh, results[0].full_refresh);
      EXPECT_EQ(results[i].sources_solved, results[0].sources_solved);
      EXPECT_EQ(results[i].sources_skipped, results[0].sources_skipped);
      EXPECT_EQ(results[i].pairs_solved, results[0].pairs_solved);
      EXPECT_EQ(results[i].pairs_skipped, results[0].pairs_skipped);
      EXPECT_EQ(results[i].paths_installed, results[0].paths_installed);
      EXPECT_EQ(results[i].last_resort_pairs, results[0].last_resort_pairs);
      expect_pib_routes_equal(pibs[i], pibs[0]);
    }
    // On full-refresh cycles the incremental state is irrelevant, so
    // every instance must also agree with a from-scratch reference
    // solve. (Pruned cycles can be legitimately stale for sources the
    // dirty-set heuristic skipped — there the cross-thread comparison
    // above is the whole contract.)
    if (results[0].full_refresh) {
      GlobalRouting oracle;
      Pib want;
      oracle.recompute_reference(views[0], nodes, {}, &want);
      expect_pib_routes_equal(pibs[0], want);
      if (cycle > 0) saw_cadence_refresh = true;
    } else {
      saw_pruned_cycle = true;
    }
  }
  // The sequence must actually have exercised both regimes.
  EXPECT_TRUE(saw_cadence_refresh);
  EXPECT_TRUE(saw_pruned_cycle);
}

}  // namespace
}  // namespace livenet::brain
