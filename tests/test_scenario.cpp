#include <gtest/gtest.h>

#include "livenet/scenario.h"
#include "livenet/system.h"

// Whole-system scenario smoke tests: a compressed-time Taobao-like
// workload against both systems, verifying the measurement pipeline
// produces sane aggregates.
namespace livenet {
namespace {

SystemConfig sys_config() {
  SystemConfig cfg;
  cfg.countries = 3;
  cfg.nodes_per_country = 2;
  cfg.last_resort_nodes = 1;
  cfg.brain.routing_interval = 20 * kSec;
  cfg.overlay_node.report_interval = 5 * kSec;
  cfg.seed = 99;
  return cfg;
}

ScenarioConfig scn_config() {
  ScenarioConfig cfg;
  cfg.duration = 60 * kSec;
  cfg.day_length = 30 * kSec;
  cfg.broadcasts = 4;
  cfg.simulcast_versions = 2;
  cfg.viewer_rate_peak = 1.0;
  cfg.mean_view_time = 15 * kSec;
  cfg.seed = 5;
  return cfg;
}

TEST(Scenario, LiveNetEndToEnd) {
  LiveNetSystem system(sys_config());
  ScenarioRunner runner(system, scn_config());
  const ScenarioResult result = runner.run();

  EXPECT_GT(result.total_viewers, 10u);
  EXPECT_EQ(result.overlay.sessions().size(),
            result.clients.records().size());
  EXPECT_FALSE(result.timeline.empty());

  std::size_t healthy = 0;
  Samples cdn_delay;
  for (const auto& s : result.overlay.sessions()) {
    if (s.cdn_delay_ms.count() > 0) {
      ++healthy;
      cdn_delay.add(s.cdn_delay_ms.mean());
      EXPECT_GE(s.path_length, 0);
      EXPECT_LE(s.path_length, 4);  // long chains possible but bounded
    }
  }
  // The vast majority of views must actually receive media.
  EXPECT_GT(healthy, result.overlay.sessions().size() * 7 / 10);
  EXPECT_GT(cdn_delay.median(), 5.0);
  EXPECT_LT(cdn_delay.median(), 500.0);

  // Brain interactions happened and were fast.
  ASSERT_FALSE(result.brain.path_requests.empty());
  Samples resp;
  for (const auto& r : result.brain.path_requests) {
    resp.add(to_ms(r.response_time));
  }
  EXPECT_LT(resp.median(), 100.0);

  // Viewers mostly played smoothly.
  RatioCounter zero_stall, fast_start;
  for (const auto& rec : result.clients.records()) {
    if (rec.view_failed || rec.first_display == kNever) continue;
    zero_stall.add(rec.stalls == 0);
    fast_start.add(rec.fast_startup());
  }
  EXPECT_GT(zero_stall.total(), 10u);
  EXPECT_GT(zero_stall.percent(), 60.0);
}

TEST(Scenario, HierEndToEnd) {
  HierSystem system(sys_config());
  ScenarioRunner runner(system, scn_config());
  const ScenarioResult result = runner.run();

  EXPECT_GT(result.total_viewers, 10u);
  std::size_t healthy = 0;
  Samples cdn_delay;
  for (const auto& s : result.overlay.sessions()) {
    if (s.cdn_delay_ms.count() > 0) {
      ++healthy;
      cdn_delay.add(s.cdn_delay_ms.mean());
      // Fixed tree depth — except viewers landing on the producer's own
      // L1, which are edge-served directly (path length 0).
      EXPECT_TRUE(s.path_length == 4 || s.path_length == 0)
          << "path_length=" << s.path_length;
    }
  }
  EXPECT_GT(healthy, result.overlay.sessions().size() / 2);
  EXPECT_GT(cdn_delay.median(), 50.0);
}

TEST(Scenario, TimelineTracksDiurnalLoad) {
  LiveNetSystem system(sys_config());
  ScenarioConfig cfg = scn_config();
  cfg.duration = 60 * kSec;  // two compressed days
  ScenarioRunner runner(system, cfg);
  const ScenarioResult result = runner.run();

  double peak_rate = 0.0, trough_rate = 1e18;
  for (const auto& s : result.timeline) {
    peak_rate = std::max(peak_rate, s.arrival_rate);
    trough_rate = std::min(trough_rate, s.arrival_rate);
  }
  EXPECT_GT(peak_rate, 2.0 * trough_rate);  // diurnal swing present
}

}  // namespace
}  // namespace livenet
