#include <gtest/gtest.h>

#include <string>

#include "livenet/sharded_scale.h"
#include "media/rtp.h"
#include "sim/network.h"
#include "sim/shard.h"

// Sharded-simulation coverage (ISSUE 7 tentpole b + satellite 2):
//  - routing misses are reason-coded SendResult drops under both the
//    strict and lenient policies (no abort in either mode);
//  - the shard boundary moves sole-reference transfer-safe messages,
//    deep-copies shared/unsafe ones, and loudly drops unclonable ones;
//  - the ShardedScaleSim golden (QoE CSV + counters) is byte-identical
//    for shards in {1, 2, 4, 8}, with and without a scripted link flap.
namespace livenet::sim {
namespace {

class Recorder final : public SimNode {
 public:
  void on_message(NodeId, const MessagePtr& msg) override {
    ++received;
    last = msg->describe();
  }
  std::uint64_t received = 0;
  std::string last;
};

/// Plain-data test message: movable through the boundary when the
/// handoff holds the only reference, cloneable otherwise.
class Ping final : public CloneableMessage<Ping> {
 public:
  std::size_t wire_size() const override { return 64; }
  std::string describe() const override { return "Ping"; }
};

/// Deliberately sticks with Message's conservative defaults: not
/// transfer-safe, clone_message() == nullptr. Crossing a shard must
/// drop it and bump cross_drops().
class Opaque final : public Message {
 public:
  std::size_t wire_size() const override { return 64; }
  std::string describe() const override { return "Opaque"; }
};

// ---------------------------------------------------------- route miss

TEST(RouteMiss, StrictPolicyReasonCodesWithoutAborting) {
  EventLoop loop;
  Network net(&loop);
  Recorder a, b;
  const NodeId ida = net.add_node(&a);
  const NodeId idb = net.add_node(&b);
  ASSERT_EQ(net.route_miss_policy(), Network::RouteMissPolicy::kStrict);

  const SendResult r = net.send_ex(ida, idb, make_message<Ping>());
  EXPECT_FALSE(r.delivered);
  EXPECT_EQ(r.arrival_time, kNever);
  EXPECT_EQ(r.drop, SendDrop::kNoRoute);
  EXPECT_EQ(net.route_miss_count(), 1u);

  // The post-freeze dense-matrix path must take the same downgrade: a
  // frozen pair with no link is a kNoRoute drop, not an abort.
  LinkConfig lc;
  lc.propagation_delay = 1 * kMs;
  net.add_link(ida, idb, lc);
  net.freeze_topology();
  EXPECT_FALSE(net.send_ex(idb, ida, make_message<Ping>()).delivered);
  EXPECT_EQ(net.send_ex(idb, ida, make_message<Ping>()).drop,
            SendDrop::kNoRoute);
  EXPECT_EQ(net.route_miss_count(), 3u);

  // The existing direction still delivers.
  EXPECT_TRUE(net.send(ida, idb, make_message<Ping>()));
  loop.run_until(10 * kMs);
  EXPECT_EQ(b.received, 1u);
}

TEST(RouteMiss, LenientPolicyCountsIdentically) {
  EventLoop loop;
  Network net(&loop);
  Recorder a, b;
  const NodeId ida = net.add_node(&a);
  const NodeId idb = net.add_node(&b);
  net.set_route_miss_policy(Network::RouteMissPolicy::kLenient);

  for (int i = 0; i < 5; ++i) {
    const SendResult r = net.send_ex(ida, idb, make_message<Ping>());
    EXPECT_FALSE(r.delivered);
    EXPECT_EQ(r.drop, SendDrop::kNoRoute);
  }
  EXPECT_EQ(net.route_miss_count(), 5u);
}

// ------------------------------------------------------ shard boundary

/// Two regions on two shards, one cross-region link a -> b.
struct TwoShardFixture {
  ShardedSim sharded{2, 2};
  Recorder sender;
  Recorder receiver;
  NodeId a = kNoNode;
  NodeId b = kNoNode;

  TwoShardFixture() {
    a = sharded.net(0).add_node(&sender);
    EXPECT_EQ(sharded.net(1).add_remote_node(), a);
    b = sharded.net(1).add_node(&receiver);
    EXPECT_EQ(sharded.net(0).add_remote_node(), b);
    sharded.set_node_region(a, 0);
    sharded.set_node_region(b, 1);
    LinkConfig lc;
    lc.propagation_delay = 10 * kMs;
    lc.jitter_stddev = 0;
    lc.loss_rate = 0.0;
    sharded.net(0).add_link(a, b, lc, 7);
    sharded.start();
    EXPECT_EQ(sharded.lookahead(), 10 * kMs);
  }
};

TEST(ShardBoundary, SoleReferenceTransferSafeMessageMovesWithoutClone) {
  TwoShardFixture f;
  f.sharded.net(0).send(f.a, f.b, make_message<Ping>());
  f.sharded.run_until(100 * kMs);
  EXPECT_EQ(f.receiver.received, 1u);
  EXPECT_EQ(f.receiver.last, "Ping");
  EXPECT_EQ(f.sharded.cross_messages(), 1u);
  EXPECT_EQ(f.sharded.cross_clones(), 0u);  // moved through, not copied
  EXPECT_EQ(f.sharded.cross_drops(), 0u);
}

TEST(ShardBoundary, RetainedReferenceForcesDeepCopy) {
  TwoShardFixture f;
  const auto msg = make_message<Ping>();
  f.sharded.net(0).send(f.a, f.b, msg);  // test still holds a reference
  f.sharded.run_until(100 * kMs);
  EXPECT_EQ(f.receiver.received, 1u);
  EXPECT_EQ(f.sharded.cross_messages(), 1u);
  EXPECT_EQ(f.sharded.cross_clones(), 1u);
}

TEST(ShardBoundary, RtpPacketAlwaysDeepCopiesItsSharedBody) {
  TwoShardFixture f;
  const std::uint64_t copies_before = media::RtpBody::deep_copy_count();
  media::RtpBody body;
  body.stream_id = 3;
  body.seq = 41;
  body.payload_bytes = 1200;
  f.sharded.net(0).send(f.a, f.b, media::RtpPacket::make(std::move(body)));
  f.sharded.run_until(100 * kMs);
  EXPECT_EQ(f.receiver.received, 1u);
  // Even at refcount 1 the trailer shares a non-atomic body refcount
  // with the sending shard: never moved, always the counted deep copy.
  EXPECT_EQ(f.sharded.cross_clones(), 1u);
  EXPECT_EQ(media::RtpBody::deep_copy_count(), copies_before + 1);
}

TEST(ShardBoundary, UncloneableMessageIsDroppedAndCounted) {
  TwoShardFixture f;
  f.sharded.net(0).send(f.a, f.b, make_message<Opaque>());
  f.sharded.run_until(100 * kMs);
  EXPECT_EQ(f.receiver.received, 0u);
  EXPECT_EQ(f.sharded.cross_messages(), 1u);
  EXPECT_EQ(f.sharded.cross_drops(), 1u);
}

// --------------------------------------------------------- shard sweep

ShardedScaleConfig sweep_config(std::size_t shards) {
  ShardedScaleConfig cfg;
  cfg.shards = shards;
  cfg.regions = 8;
  cfg.relays_per_region = 1;
  cfg.consumers_per_relay = 1;
  cfg.viewers_per_leaf = 250;
  cfg.duration = 3 * kSec;
  return cfg;
}

void expect_same_world(const ShardedScaleResult& base,
                       const ShardedScaleResult& got) {
  EXPECT_EQ(got.qoe_csv, base.qoe_csv);
  // `events` is deliberately absent: callback fusion granularity (not
  // dispatch order) varies with loop co-tenancy, like batch_upcalls.
  EXPECT_GT(got.events, 0u);
  EXPECT_EQ(got.modeled_viewers, base.modeled_viewers);
  EXPECT_EQ(got.cross_messages, base.cross_messages);
  EXPECT_EQ(got.cross_clones, base.cross_clones);
  EXPECT_EQ(got.cross_drops, base.cross_drops);
  EXPECT_EQ(got.route_misses, base.route_misses);
  EXPECT_EQ(got.frames_displayed, base.frames_displayed);
  EXPECT_EQ(got.stalls, base.stalls);
  EXPECT_EQ(got.lookahead, base.lookahead);
}

TEST(ShardSweep, GoldenIsByteIdenticalForEveryShardCount) {
  const ShardedScaleResult base = ShardedScaleSim(sweep_config(1)).run();
  EXPECT_GT(base.frames_displayed, 0u);
  EXPECT_GT(base.cross_messages, 0u);
  EXPECT_EQ(base.cross_drops, 0u);
  EXPECT_EQ(base.route_misses, 0u);
  EXPECT_EQ(base.modeled_viewers, 8u * 250u);
  for (const std::size_t shards : {2u, 4u, 8u}) {
    SCOPED_TRACE(shards);
    const ShardedScaleResult got = ShardedScaleSim(sweep_config(shards)).run();
    expect_same_world(base, got);
  }
}

TEST(ShardSweep, ChaosFlapStaysShardCountInvariant) {
  auto chaos = [](std::size_t shards) {
    ShardedScaleConfig cfg = sweep_config(shards);
    cfg.flap_at = 1200 * kMs;
    cfg.flap_duration = 400 * kMs;
    cfg.flap_region = 3;
    return cfg;
  };
  const ShardedScaleResult calm = ShardedScaleSim(sweep_config(1)).run();
  const ShardedScaleResult base = ShardedScaleSim(chaos(1)).run();
  // The flap must actually perturb the world, or invariance is vacuous.
  EXPECT_NE(base.qoe_csv, calm.qoe_csv);
  for (const std::size_t shards : {2u, 4u, 8u}) {
    SCOPED_TRACE(shards);
    const ShardedScaleResult got = ShardedScaleSim(chaos(shards)).run();
    expect_same_world(base, got);
  }
}

}  // namespace
}  // namespace livenet::sim
