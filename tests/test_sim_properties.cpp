#include <gtest/gtest.h>

#include <cmath>

#include "sim/event_loop.h"
#include "sim/link.h"
#include "util/rng.h"

// Property sweeps over the network substrate: the link model must
// conserve bandwidth, order deliveries, and apply jitter without
// reordering beyond its configured magnitude.
namespace livenet::sim {
namespace {

class LinkBandwidthSweep : public ::testing::TestWithParam<int> {};

TEST_P(LinkBandwidthSweep, ThroughputNeverExceedsCapacity) {
  const double mbps = GetParam();
  EventLoop loop;
  LinkConfig lc;
  lc.propagation_delay = 5 * kMs;
  lc.bandwidth_bps = mbps * 1e6;
  lc.jitter_stddev = 0;
  lc.queue_limit_bytes = 1 << 30;  // no drops: pure serialization
  Link link(&loop, 0, 1, lc, Rng(3));

  // Offer 2x capacity for one second.
  const int packets = static_cast<int>(2.0 * mbps * 1e6 / 8.0 / 1200.0);
  Time last_arrival = 0;
  for (int i = 0; i < packets; ++i) {
    const SendResult r = link.send(1200);
    ASSERT_TRUE(r.delivered);
    EXPECT_GE(r.arrival_time, last_arrival);  // FIFO per link
    last_arrival = r.arrival_time;
  }
  // All bytes serialized at the configured rate, modulo the
  // microsecond quantization of per-packet serialization times.
  const auto per_packet = static_cast<Duration>(
      1200.0 * 8.0 / (mbps * 1e6) * static_cast<double>(kSec));
  const double expected_secs = to_sec(per_packet) * packets;
  EXPECT_NEAR(to_sec(last_arrival - lc.propagation_delay), expected_secs,
              expected_secs * 0.01 + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Rates, LinkBandwidthSweep,
                         ::testing::Values(1, 10, 100, 1000));

TEST(LinkProperties, JitterBoundedAndNonNegative) {
  EventLoop loop;
  LinkConfig lc;
  lc.propagation_delay = 20 * kMs;
  lc.bandwidth_bps = 1e9;
  lc.jitter_stddev = 500;  // 0.5 ms
  Link link(&loop, 0, 1, lc, Rng(5));
  for (int i = 0; i < 2000; ++i) {
    const SendResult r = link.send(100);
    ASSERT_TRUE(r.delivered);
    // Jitter only adds delay (|N|), never subtracts, and is bounded
    // w.h.p. — serialization at 1 Gbps is sub-microsecond here.
    EXPECT_GE(r.arrival_time, lc.propagation_delay);
    EXPECT_LE(r.arrival_time, lc.propagation_delay + 2 * kMs + 5 * kMs);
  }
}

TEST(LinkProperties, LossCountsAreConsistent) {
  EventLoop loop;
  LinkConfig lc;
  lc.propagation_delay = 1 * kMs;
  lc.bandwidth_bps = 1e9;
  lc.loss_rate = 0.25;
  Link link(&loop, 0, 1, lc, Rng(11));
  int delivered = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    if (link.send(500).delivered) ++delivered;
  }
  const auto& st = link.stats();
  EXPECT_EQ(st.packets_sent, static_cast<std::uint64_t>(n));
  EXPECT_EQ(st.packets_delivered, static_cast<std::uint64_t>(delivered));
  EXPECT_EQ(st.packets_delivered + st.packets_lost + st.packets_dropped,
            st.packets_sent);
  EXPECT_NEAR(static_cast<double>(st.packets_lost) / n, 0.25, 0.02);
}

TEST(LinkProperties, DynamicReconfigurationTakesEffect) {
  EventLoop loop;
  LinkConfig lc;
  lc.propagation_delay = 1 * kMs;
  lc.bandwidth_bps = 8e6;
  lc.jitter_stddev = 0;
  Link link(&loop, 0, 1, lc, Rng(1));
  const SendResult a = link.send(1000);  // 1 ms serialization
  link.set_bandwidth_bps(16e6);
  const SendResult b = link.send(1000);  // 0.5 ms at the new rate
  EXPECT_EQ(b.arrival_time - a.arrival_time, 500);
  link.set_loss_rate(1.0);
  EXPECT_FALSE(link.send(1000).delivered);
}

TEST(LinkProperties, QueueBacklogReportsWaitingBytes) {
  EventLoop loop;
  LinkConfig lc;
  lc.propagation_delay = 1 * kMs;
  lc.bandwidth_bps = 8e6;  // 1 byte/us
  Link link(&loop, 0, 1, lc, Rng(1));
  EXPECT_EQ(link.backlog_bytes(), 0u);
  link.send(10000);
  // 10 KB at 1 byte/us: backlog ~10 KB right after the send.
  EXPECT_NEAR(static_cast<double>(link.backlog_bytes()), 10000.0, 50.0);
  loop.run_until(20 * kMs);
  EXPECT_EQ(link.backlog_bytes(), 0u);
}

}  // namespace
}  // namespace livenet::sim
