#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "overlay/messages.h"
#include "overlay/overlay_node.h"
#include "overlay/stream_context.h"
#include "sim/event_loop.h"
#include "sim/network.h"

// The unified StreamTable (FIB view vs. context view) and the stream
// lifecycle invariant it exists to enforce: per-stream state — in
// particular in-flight path lookups and their retry timers — must die
// with the stream. The old split-map node leaked `pending_path_reqs_`
// entries past release_stream()/crash(), so a late PathResponse could
// resurrect a stream nobody wanted and the lookup retry loop kept
// running forever.
namespace livenet {
namespace {

using media::StreamId;
using sim::NodeId;

// ------------------------------------------------------------ StreamTable

TEST(StreamTable, ContextDoesNotActivateFib) {
  overlay::StreamTable t;
  t.context(7).cached_paths.push_back({1, 2});
  EXPECT_EQ(t.find(7), nullptr);  // not a forwarding entry yet
  EXPECT_FALSE(t.contains(7));
  EXPECT_EQ(t.stream_count(), 0u);
  EXPECT_EQ(t.context_count(), 1u);
  EXPECT_TRUE(t.streams().empty());
}

TEST(StreamTable, FibEntryActivatesAndKeepsContextState) {
  overlay::StreamTable t;
  t.context(7).paths_fetched = 123;
  t.fib_entry(7).locally_produced = true;
  ASSERT_NE(t.find(7), nullptr);
  EXPECT_TRUE(t.find(7)->locally_produced);
  EXPECT_EQ(t.stream_count(), 1u);
  // Activation upgraded the existing context in place.
  EXPECT_EQ(t.context_count(), 1u);
  EXPECT_EQ(t.find_context(7)->paths_fetched, 123);
}

TEST(StreamTable, RemoveSubscriberIsNoopWithoutActiveEntry) {
  overlay::StreamTable t;
  t.context(7);  // bare context, FIB inactive
  t.remove_node_subscriber(7, 3);
  t.remove_client_subscriber(7, 4);
  EXPECT_EQ(t.find(7), nullptr);
  EXPECT_EQ(t.stream_count(), 0u);

  t.add_node_subscriber(9, 3);  // creates + activates, like StreamFib
  ASSERT_NE(t.find(9), nullptr);
  EXPECT_EQ(t.find(9)->subscriber_nodes.count(3), 1u);
  t.remove_node_subscriber(9, 3);
  EXPECT_TRUE(t.find(9)->subscriber_nodes.empty());
}

TEST(StreamTable, EraseDropsEverythingInOneStroke) {
  overlay::StreamTable t;
  t.add_client_subscriber(7, 11);
  t.context(7).pending_views.push_back({});
  t.erase(7);
  EXPECT_EQ(t.find(7), nullptr);
  EXPECT_EQ(t.find_context(7), nullptr);
  EXPECT_EQ(t.stream_count(), 0u);
  EXPECT_EQ(t.context_count(), 0u);
  t.erase(7);  // idempotent
  EXPECT_EQ(t.stream_count(), 0u);
}

TEST(StreamTable, StreamsListsOnlyFibActiveContexts) {
  overlay::StreamTable t;
  t.context(1);
  t.fib_entry(2);
  t.fib_entry(3);
  auto s = t.streams();
  std::sort(s.begin(), s.end());
  EXPECT_EQ(s, (std::vector<StreamId>{2, 3}));
}

// ------------------------------------------------- lookup lifecycle leaks

// A scriptable peer: records the control traffic an OverlayNode under
// test emits and answers only when the test says so.
class Probe final : public sim::SimNode {
 public:
  void on_message(NodeId from, const sim::MessagePtr& msg) override {
    if (const auto req = sim::msg_cast<const overlay::PathRequest>(msg)) {
      path_requests.emplace_back(req->request_id, req->stream_id);
      return;
    }
    if (const auto sub =
            sim::msg_cast<const overlay::SubscribeRequest>(msg)) {
      ++subscribes;
      if (ack_subscribes) {
        auto ack = sim::make_message<overlay::SubscribeAck>();
        ack->stream_id = sub->stream_id;
        ack->ok = true;
        net->send(node_id(), from, std::move(ack));
      }
      return;
    }
    if (sim::msg_cast<const overlay::UnsubscribeRequest>(msg)) {
      ++unsubscribes;
      return;
    }
    if (sim::msg_cast<const overlay::NodeStateReport>(msg)) {
      ++reports;
      return;
    }
    // ViewAck, media, feedback: irrelevant to these tests.
  }

  sim::Network* net = nullptr;
  bool ack_subscribes = true;
  std::vector<std::pair<std::uint64_t, StreamId>> path_requests;
  int subscribes = 0;
  int unsubscribes = 0;
  int reports = 0;
};

struct NodeHarness {
  sim::EventLoop loop;
  sim::Network net{&loop};
  overlay::OverlayMetrics metrics;
  overlay::OverlayNode node{&net, &metrics};
  Probe svc;     // Brain + path service
  Probe up;      // upstream relay
  Probe client;  // viewer endpoint
  NodeId node_id, svc_id, up_id, client_id;

  NodeHarness() {
    node_id = net.add_node(&node);
    svc_id = net.add_node(&svc);
    up_id = net.add_node(&up);
    client_id = net.add_node(&client);
    svc.net = &net;
    up.net = &net;
    client.net = &net;
    sim::LinkConfig lc;
    lc.jitter_stddev = 0;  // deterministic timing
    net.add_bidi_link(node_id, svc_id, lc);
    net.add_bidi_link(node_id, up_id, lc);
    net.add_bidi_link(node_id, client_id, lc);
    node.set_brain(svc_id);
    node.set_path_service(svc_id);
    node.set_overlay_peers({node_id, up_id});
  }

  void send_view_request(StreamId s) {
    auto view = sim::make_message<overlay::ViewRequest>();
    view->stream_id = s;
    view->client_id = 1;
    net.send(client_id, node_id, std::move(view));
  }

  void answer_lookup(std::uint64_t request_id, StreamId s) {
    auto resp = sim::make_message<overlay::PathResponse>();
    resp->request_id = request_id;
    resp->stream_id = s;
    resp->paths = {overlay::Path{up_id, node_id}};
    net.send(svc_id, node_id, std::move(resp));
  }
};

TEST(StreamContextLeak, ReleaseSweepsInFlightLookup) {
  NodeHarness h;

  // Viewer asks for stream 7: no local path, so the node asks the Brain.
  h.send_view_request(7);
  h.loop.run_until(100 * kMs);
  ASSERT_EQ(h.svc.path_requests.size(), 1u);

  // Answer it: the node subscribes through `up` and attaches the view.
  h.answer_lookup(h.svc.path_requests[0].first, 7);
  h.loop.run_until(200 * kMs);
  EXPECT_EQ(h.up.subscribes, 1);
  ASSERT_TRUE(h.node.fib().contains(7));

  // A stalling client triggers a path switch; the only cached path is
  // the current one, so the switch waits on a fresh lookup — which we
  // never answer: the lookup (and its retry loop) stays in flight.
  auto rep = sim::make_message<overlay::ClientQualityReport>();
  rep->stream_id = 7;
  rep->client_id = 1;
  rep->stalls_since_last = 3;
  h.net.send(h.client_id, h.node_id, std::move(rep));
  h.loop.run_until(300 * kMs);
  ASSERT_EQ(h.svc.path_requests.size(), 2u);

  // The viewer leaves; after the linger window the stream is released
  // with the lookup still unanswered.
  auto stop = sim::make_message<overlay::ViewStop>();
  stop->stream_id = 7;
  stop->client_id = 1;
  h.net.send(h.client_id, h.node_id, std::move(stop));
  h.loop.run_until(6 * kSec);
  EXPECT_FALSE(h.node.fib().contains(7));
  EXPECT_GE(h.up.unsubscribes, 1);
  const auto requests_at_release = h.svc.path_requests.size();

  // A late response for the swept lookup must not resurrect the stream,
  // and the retry timer must find nothing and die: no re-subscription,
  // no further lookups, no recreated context.
  h.answer_lookup(h.svc.path_requests.back().first, 7);
  h.loop.run_until(30 * kSec);
  EXPECT_FALSE(h.node.fib().contains(7));
  EXPECT_EQ(h.up.subscribes, 1);
  EXPECT_EQ(h.svc.path_requests.size(), requests_at_release);
}

TEST(StreamContextLeak, CrashSweepsInFlightLookupAndTimers) {
  NodeHarness h;
  h.node.start_reporting();
  h.loop.run_until(50 * kMs);
  const int reports_alive = h.svc.reports;
  EXPECT_GE(reports_alive, 1);  // reporting loop is running

  // Lookup in flight...
  h.send_view_request(7);
  h.loop.run_until(100 * kMs);
  ASSERT_EQ(h.svc.path_requests.size(), 1u);

  // ...and the node dies mid-request.
  h.node.crash();

  // The late response hits the crashed node: its pending-lookup table
  // was swept, so nothing is established and no state reappears.
  h.answer_lookup(h.svc.path_requests[0].first, 7);
  h.loop.run_until(10 * kMin);
  EXPECT_FALSE(h.node.fib().contains(7));
  EXPECT_EQ(h.up.subscribes, 0);
  // The lookup retry died (no re-request) and the report/overload
  // timers were cancelled (no reports after the crash, even far past
  // several report intervals).
  EXPECT_EQ(h.svc.path_requests.size(), 1u);
  EXPECT_EQ(h.svc.reports, reports_alive);
}

}  // namespace
}  // namespace livenet
