#include <gtest/gtest.h>

#include "client/broadcaster.h"
#include "client/viewer.h"
#include "livenet/system.h"

// Integration tests for the fine-grained stream control of §5.2 and the
// deployment behaviours of §7.1: seamless co-stream switching,
// delegated bitrate downgrades, viewer mobility, and quality-driven
// path switching.
namespace livenet {
namespace {

SystemConfig base_config() {
  SystemConfig cfg;
  cfg.countries = 2;
  cfg.nodes_per_country = 3;
  cfg.dns_candidates = 1;
  cfg.last_resort_nodes = 1;
  cfg.brain.routing_interval = 5 * kSec;
  cfg.overlay_node.report_interval = 2 * kSec;
  cfg.seed = 777;
  return cfg;
}

client::BroadcasterConfig ladder_config() {
  client::BroadcasterConfig bc;
  media::VideoSourceConfig hi, lo;
  hi.fps = lo.fps = 25;
  hi.gop_frames = lo.gop_frames = 25;
  hi.bitrate_bps = 2.0e6;
  lo.bitrate_bps = 0.4e6;
  bc.versions = {hi, lo};
  return bc;
}

struct World {
  LiveNetSystem system;
  client::ClientMetrics qoe;
  client::Broadcaster broadcaster;
  workload::GeoSite bsite;
  sim::NodeId producer;

  World() : system(base_config()),
            broadcaster(&system.network(), 3, ladder_config()) {
    system.build_once();
    system.start();
    bsite = system.geo().sample_site(0);
    producer = system.attach_client(&broadcaster, bsite);
    broadcaster.start(producer, {1, 2});
  }
};

TEST(StreamControl, CostreamFlipIsSeamless) {
  World w;
  w.system.loop().run_until(6 * kSec);

  client::Viewer viewer(&w.system.network(), &w.qoe);
  const auto vsite = w.system.geo().sample_site(1);
  const auto consumer = w.system.attach_client(&viewer, vsite);
  viewer.start_view(consumer, 1, {2});
  w.system.loop().run_until(12 * kSec);

  // A co-stream (stream 9) starts from the same producer; the consumer
  // flips the viewer once a complete GoP of stream 9 is cached.
  client::Broadcaster joint(&w.system.network(), 4, ladder_config());
  w.system.attach_client(&joint, w.bsite);
  joint.start(w.producer, {9, 10});
  w.system.loop().run_until(15 * kSec);
  w.broadcaster.announce_costream(1, 9);
  w.system.loop().run_until(25 * kSec);

  const auto& sess = w.system.sessions().sessions().front();
  EXPECT_GE(sess.costream_switches, 1);
  // The viewer kept playing: stalls bounded despite the switch.
  const auto& rec = w.qoe.records().front();
  EXPECT_LE(rec.stalls, 2u);
  EXPECT_GT(rec.frames_displayed, 200u);
  // The consumer now serves stream 9 to this client.
  const auto* e9 = w.system.node(consumer).fib().find(9);
  ASSERT_NE(e9, nullptr);
  EXPECT_EQ(e9->subscriber_clients.size(), 1u);
}

TEST(StreamControl, BitrateDowngradeOnConstrainedLastMile) {
  SystemConfig cfg = base_config();
  cfg.access_bandwidth_bps = 1.0e6;  // below the 2 Mbps top version
  LiveNetSystem system(cfg);
  client::ClientMetrics qoe;
  client::Broadcaster bcast(&system.network(), 3, ladder_config());
  system.build_once();
  system.start();
  const auto bsite = system.geo().sample_site(0);
  bcast.start(system.attach_client(&bcast, bsite), {1, 2});
  system.loop().run_until(6 * kSec);

  client::Viewer viewer(&system.network(), &qoe);
  const auto vsite = system.geo().sample_site(1);
  const auto consumer = system.attach_client(&viewer, vsite);
  viewer.start_view(consumer, 1, {2});
  system.loop().run_until(40 * kSec);

  // The consumer must have moved the client to the 0.4 Mbps version.
  const auto& sess = system.sessions().sessions().front();
  EXPECT_GE(sess.bitrate_downgrades, 1);
  const auto* e2 = system.node(consumer).fib().find(2);
  ASSERT_NE(e2, nullptr);
  EXPECT_EQ(e2->subscriber_clients.size(), 1u);
  // And the viewer keeps receiving (the low version fits the link).
  const auto& rec = qoe.records().front();
  EXPECT_GT(rec.frames_displayed, 100u);
}

TEST(StreamControl, ViewerMigrationKeepsPlaybackAlive) {
  World w;
  w.system.loop().run_until(6 * kSec);

  client::Viewer viewer(&w.system.network(), &w.qoe);
  const auto vsite = w.system.geo().sample_site(1);
  const auto consumer = w.system.attach_client(&viewer, vsite);
  viewer.start_view(consumer, 1, {2});
  w.system.loop().run_until(14 * kSec);
  const auto frames_before = w.qoe.records().front().frames_displayed;
  ASSERT_GT(frames_before, 50u);

  // Move: wire an access link to a different edge and resubscribe.
  sim::NodeId other = sim::kNoNode;
  for (const auto n : w.system.edge_nodes()) {
    if (n != consumer) {
      other = n;
      break;
    }
  }
  ASSERT_NE(other, sim::kNoNode);
  sim::LinkConfig access;
  access.propagation_delay = 25 * kMs;
  access.bandwidth_bps = 20e6;
  w.system.network().add_bidi_link(viewer.node_id(), other, access);
  viewer.migrate(other);
  w.system.loop().run_until(26 * kSec);

  const auto& rec = w.qoe.records().front();
  EXPECT_GT(rec.frames_displayed, frames_before + 100);
  EXPECT_EQ(rec.consumer, other);
  // Both consumers logged a session for this client.
  EXPECT_EQ(w.system.sessions().sessions().size(), 2u);
}

TEST(StreamControl, QualitySwitchReroutesAroundDegradedHop) {
  SystemConfig cfg = base_config();
  cfg.countries = 3;
  cfg.nodes_per_country = 4;
  LiveNetSystem system(cfg);
  client::ClientMetrics qoe;
  client::Broadcaster bcast(&system.network(), 3, ladder_config());
  system.build_once();
  system.start();
  bcast.start(system.attach_client(&bcast, system.geo().sample_site(0)),
              {1, 2});
  system.loop().run_until(6 * kSec);

  client::Viewer viewer(&system.network(), &qoe);
  const auto vsite = system.geo().sample_site(1);
  const auto consumer = system.attach_client(&viewer, vsite);
  viewer.start_view(consumer, 1, {2});
  system.loop().run_until(14 * kSec);

  const auto* entry = system.node(consumer).fib().find(1);
  ASSERT_NE(entry, nullptr);
  const auto old_upstream = entry->upstream;
  if (old_upstream == sim::kNoNode) {
    GTEST_SKIP() << "viewer landed on the producer node";
  }
  // Break the active hop almost completely.
  system.network().link(old_upstream, consumer)->set_loss_rate(0.95);
  system.loop().run_until(30 * kSec);

  const auto& sess = system.sessions().sessions().front();
  EXPECT_GE(sess.path_switches, 1);
  const auto* after = system.node(consumer).fib().find(1);
  ASSERT_NE(after, nullptr);
  EXPECT_NE(after->upstream, old_upstream);
}

}  // namespace
}  // namespace livenet
