#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "livenet/csv.h"
#include "livenet/defaults.h"
#include "livenet/report.h"
#include "media/fec.h"
#include "media/video_source.h"
#include "overlay/forwarding_engine.h"
#include "overlay/overlay_node.h"
#include "overlay/peer_senders.h"
#include "overlay/stream_context.h"
#include "sim/network.h"
#include "telemetry/metrics.h"
#include "transport/receive_buffer.h"

// SVC layered forwarding (DESIGN.md "SVC layered forwarding"): the
// layer lattice the encoder emits, the sparse FEC groups and void
// protocol that keep recovery off filtered layers, the zero-copy
// filtered fan-out, and the scenario-level differential proving the
// SVC-off world is byte-identical to the pre-SVC simulator.
namespace livenet {
namespace {

using media::kAllLayers;
using media::lattice_mask;
using media::layer_bit;
using media::LayerMask;

// ---------------------------------------------------------------------
// Lattice helpers.

TEST(SvcLattice, MaskHelpers) {
  EXPECT_EQ(layer_bit(0, 0), 0x0001u);
  EXPECT_EQ(layer_bit(0, 2), 0x0004u);
  EXPECT_EQ(layer_bit(1, 0), 0x0010u);
  EXPECT_EQ(layer_bit(2, 2), 0x0400u);
  EXPECT_EQ(lattice_mask(1, 1), 0x0001u);
  EXPECT_EQ(lattice_mask(1, 3), 0x0007u);
  EXPECT_EQ(lattice_mask(3, 3), 0x0777u);
  EXPECT_EQ(lattice_mask(4, 4), kAllLayers);
}

// ---------------------------------------------------------------------
// Encoder lattice: dyadic temporal assignment, spatial columns, and the
// bit-identity of a 1x1 source with the pre-SVC frame stream.

TEST(SvcSource, DyadicTemporalPatternL1T3) {
  media::VideoSourceConfig cfg;
  cfg.fps = 25;
  cfg.gop_frames = 8;
  cfg.svc_temporal_layers = 3;
  media::VideoSource src(1, cfg, Rng(7));
  // Dyadic T=3 pattern over one GoP: 0 2 1 2 0... (pos 0 is the I).
  const std::uint8_t expect[] = {0, 2, 1, 2, 0, 2, 1, 2};
  for (int g = 0; g < 2; ++g) {
    for (std::size_t i = 0; i < 8; ++i) {
      const media::Frame f = src.next_frame(0);
      EXPECT_EQ(f.layer.temporal, expect[i]) << "pos " << i;
      EXPECT_EQ(f.layer.spatial, 0);
      EXPECT_TRUE(f.is_svc());
      EXPECT_EQ(f.temporal_layers, 3);
      // Only the top temporal layer is safe to drop mid-GoP.
      EXPECT_EQ(f.discardable, f.layer.temporal == 2);
      EXPECT_EQ(f.is_keyframe(), i == 0);
    }
  }
}

TEST(SvcSource, SpatialColumnsShareTheCaptureTick) {
  media::VideoSourceConfig cfg;
  cfg.fps = 25;
  cfg.gop_frames = 4;
  cfg.svc_spatial_layers = 3;
  cfg.svc_temporal_layers = 3;
  media::VideoSource src(9, cfg, Rng(3));
  const auto picture = src.next_picture(5 * kMs);
  ASSERT_EQ(picture.size(), 3u);
  for (std::uint8_t s = 0; s < 3; ++s) {
    EXPECT_EQ(picture[s].layer.spatial, s);
    EXPECT_EQ(picture[s].layer.temporal, picture[0].layer.temporal);
    EXPECT_EQ(picture[s].capture_time, 5 * kMs);
    EXPECT_EQ(picture[s].gop_id, picture[0].gop_id);
  }
  // Consecutive frame ids: base first, then enhancements.
  EXPECT_EQ(picture[1].frame_id, picture[0].frame_id + 1);
  EXPECT_EQ(picture[2].frame_id, picture[0].frame_id + 2);
  // Spatial enhancements scale up (higher resolution costs bytes).
  EXPECT_GT(picture[1].size_bytes, picture[0].size_bytes);
  EXPECT_GT(picture[2].size_bytes, picture[1].size_bytes);
}

TEST(SvcSource, OneByOneLatticeIsBitIdenticalToPlainSource) {
  media::VideoSourceConfig plain;
  plain.fps = 25;
  plain.gop_frames = 10;
  media::VideoSourceConfig svc_off = plain;
  svc_off.svc_spatial_layers = 1;
  svc_off.svc_temporal_layers = 1;
  media::VideoSource a(3, plain, Rng(11));
  media::VideoSource b(3, svc_off, Rng(11));
  for (int i = 0; i < 50; ++i) {
    const media::Frame fa = a.next_frame(i * kMs);
    const auto pic = b.next_picture(i * kMs);
    ASSERT_EQ(pic.size(), 1u);
    const media::Frame& fb = pic[0];
    EXPECT_EQ(fa.frame_id, fb.frame_id);
    EXPECT_EQ(fa.size_bytes, fb.size_bytes);
    EXPECT_EQ(fa.type, fb.type);
    EXPECT_FALSE(fb.is_svc());
    EXPECT_EQ(fb.layer_mask_bit(), layer_bit(0, 0));
  }
}

// ---------------------------------------------------------------------
// FEC over a layer-filtered link: sparse membership bitmaps.

media::RtpBody svc_body(media::Seq seq, std::uint8_t temporal) {
  media::RtpBody b;
  b.stream_id = 4;
  b.seq = seq;
  b.frame_id = seq;
  b.gop_id = 1;
  b.payload_bytes = 900 + seq;
  b.layer = media::LayerId{0, temporal};
  b.spatial_layers = 1;
  b.temporal_layers = 2;
  b.discardable = temporal == 1;
  return b;
}

TEST(SvcFec, DenseGroupKeepsLegacyZeroBitmap) {
  media::FecGroupEncoder enc(3);
  EXPECT_FALSE(enc.add(svc_body(1, 0)).has_value());
  EXPECT_FALSE(enc.add(svc_body(2, 0)).has_value());
  const auto parity = enc.add(svc_body(3, 0));
  ASSERT_TRUE(parity.has_value());
  EXPECT_EQ(parity->fec_seq_bitmap, 0u);  // byte-identical legacy parity
  EXPECT_EQ(parity->fec_base_seq, 1u);
  EXPECT_EQ(parity->fec_group_count, 3u);
}

TEST(SvcFec, SparseGroupSpendsNoParityOnFilteredSeqs) {
  // Link forwards T0 only: seqs 1 3 5 are members, 2 and 4 skipped.
  media::FecGroupEncoder enc(3);
  EXPECT_FALSE(enc.add(svc_body(1, 0)).has_value());
  enc.skip(2);
  EXPECT_FALSE(enc.add(svc_body(3, 0)).has_value());
  enc.skip(4);
  const auto parity = enc.add(svc_body(5, 0));
  ASSERT_TRUE(parity.has_value());
  EXPECT_EQ(parity->fec_seq_bitmap, 0b10101u);  // members 1, 3, 5

  // The decoder reconstructs a lost *member* from the other members —
  // the skipped seqs are not holes.
  media::FecDecoder dec;
  const auto p1 = media::RtpPacket::make(svc_body(1, 0));
  const auto p5 = media::RtpPacket::make(svc_body(5, 0));
  const auto pp = media::RtpPacket::make(*parity);
  dec.on_parity(*pp);  // activates; group held (nothing received yet)
  EXPECT_EQ(dec.on_media(*p1), nullptr);
  media::RtpPacketMut rec = dec.on_media(*p5);  // one hole left: seq 3
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->producer_seq(), 3u);
  EXPECT_TRUE(rec->fec_recovered);
  EXPECT_EQ(rec->payload_bytes(), 903u);
  EXPECT_EQ(rec->layer().temporal, 0);  // lattice coordinates survive XOR
  EXPECT_EQ(rec->temporal_layers(), 2);
}

// ---------------------------------------------------------------------
// Receive-buffer voids: filtered seqs never NACK, and a stale copy of a
// filtered layer can never resurrect through out-of-band recovery.

media::RtpPacketMut make_pkt(media::Seq seq, media::Seq prev_link_seq = 0) {
  media::RtpPacketMut p = media::RtpPacket::make(svc_body(seq, 0));
  p->prev_link_seq = prev_link_seq;
  return p;
}

TEST(SvcVoids, VoidedSeqsDrainWithoutNackOrGap) {
  sim::EventLoop loop;
  std::vector<media::Seq> delivered;
  int gaps = 0;
  int nacks = 0;
  transport::ReceiveBuffer buf(
      &loop,
      [&](const media::RtpPacketPtr& p) { delivered.push_back(p->seq); },
      [&](media::StreamId) { ++gaps; },
      [&](media::StreamId, bool, const std::vector<media::Seq>&) {
        ++nacks;
      });
  buf.on_packet(make_pkt(1));
  // Sender vouches (1, 4) was filtered on purpose: 2 and 3 are voids.
  buf.on_packet(make_pkt(4, /*prev_link_seq=*/1));
  loop.run_until(1 * kSec);
  EXPECT_EQ(delivered, (std::vector<media::Seq>{1, 4}));
  EXPECT_EQ(gaps, 0);
  EXPECT_EQ(nacks, 0);
}

TEST(SvcVoids, StaleFilteredLayerNeverResurrects) {
  sim::EventLoop loop;
  std::vector<media::Seq> delivered;
  transport::ReceiveBuffer buf(
      &loop,
      [&](const media::RtpPacketPtr& p) { delivered.push_back(p->seq); },
      [](media::StreamId) {},
      [](media::StreamId, bool, const std::vector<media::Seq>&) {});
  buf.on_packet(make_pkt(1));
  // Genuine loss of 2..3, then a void at 5: the clean-gap protocol only
  // vouches for (4, 6), so 2..3 stay real holes.
  media::RtpPacketMut p4 = make_pkt(4);
  buf.on_packet(p4);  // hole 2..3 opens
  buf.on_packet(make_pkt(6, /*prev_link_seq=*/4));
  EXPECT_TRUE(buf.would_accept(4, false, 2));   // real hole: recoverable
  EXPECT_FALSE(buf.would_accept(4, false, 5));  // void: injection refused
  // Fill the genuine holes; the drain steps over the void.
  buf.on_packet(make_pkt(2));
  buf.on_packet(make_pkt(3));
  EXPECT_EQ(delivered, (std::vector<media::Seq>{1, 2, 3, 4, 6}));
  // A stale RTX of the voided seq arriving late is a duplicate, not a
  // delivery — the filtered layer cannot resurrect.
  const std::uint64_t dup_before = buf.duplicates();
  media::RtpPacketMut stale = make_pkt(5);
  stale->is_rtx = true;
  buf.on_packet(stale);
  EXPECT_EQ(buf.duplicates(), dup_before + 1);
  EXPECT_EQ(delivered.back(), 6u);
  EXPECT_EQ(buf.packets_delivered(), 5u);
}

// ---------------------------------------------------------------------
// Zero-copy filtered fan-out: a packet excluded by a subscriber's mask
// is never forked for that link — no trailer allocation, no body copy.

class PacketSink final : public sim::SimNode {
 public:
  void on_message(sim::NodeId, const sim::MessagePtr& msg) override {
    if (const auto pkt = sim::msg_cast<const media::RtpPacket>(msg)) {
      seqs.push_back(pkt->producer_seq());
      prevs.push_back(pkt->prev_link_seq);
    }
  }
  std::vector<media::Seq> seqs;
  std::vector<media::Seq> prevs;
};

TEST(SvcZeroCopy, FilteredTargetIsNeverForked) {
  reset_telemetry();
  sim::EventLoop loop;
  sim::Network net(&loop, /*seed=*/5);
  PacketSink owner, dense_peer, masked_peer;
  const sim::NodeId self = net.add_node(&owner);
  const sim::NodeId a = net.add_node(&dense_peer);
  const sim::NodeId b = net.add_node(&masked_peer);
  sim::LinkConfig lc;
  lc.bandwidth_bps = 1e9;
  lc.propagation_delay = 1 * kMs;
  lc.loss_rate = 0.0;
  lc.jitter_stddev = 0;
  net.add_bidi_link(self, a, lc);
  net.add_bidi_link(self, b, lc);

  overlay::OverlayNodeConfig cfg;
  overlay::NodeEnv env;
  env.net = &net;
  env.owner = &owner;
  env.peers = {a, b};
  env.peer_set = {a, b};
  overlay::PeerSenders senders(&net, &owner, cfg.sender);
  overlay::ForwardingEngine engine(&cfg, &env, &senders);

  overlay::StreamContext ctx;
  ctx.fib_active = true;
  ctx.fib.locally_produced = true;
  ctx.fib.subscriber_nodes.insert(a);
  ctx.fib.subscriber_nodes.insert(b);
  ctx.fib.set_node_mask(b, layer_bit(0, 0));  // base temporal layer only

  const std::uint64_t copies_before = media::RtpBody::deep_copy_count();
  const std::uint64_t filtered_before =
      telemetry::handles().layer_filtered->value();
  // T0 T1 T0: the enhancement (seq 2) is filtered off the masked link.
  for (media::Seq s = 1; s <= 3; ++s) {
    engine.fast_forward(sim::kNoNode,
                        media::RtpPacket::make(svc_body(s, s == 2 ? 1 : 0)),
                        &ctx);
    loop.run();
  }

  EXPECT_EQ(dense_peer.seqs, (std::vector<media::Seq>{1, 2, 3}));
  EXPECT_EQ(dense_peer.prevs, (std::vector<media::Seq>{0, 0, 0}));
  // The masked peer got T0 only; the fork it did receive is stamped
  // with the void range so its receive buffer never NACKs seq 2.
  EXPECT_EQ(masked_peer.seqs, (std::vector<media::Seq>{1, 3}));
  EXPECT_EQ(masked_peer.prevs, (std::vector<media::Seq>{0, 1}));
  // Zero-copy both ways: forwarding shares one body, and the filtered
  // target never allocated so much as a trailer.
  EXPECT_EQ(media::RtpBody::deep_copy_count(), copies_before);
  EXPECT_EQ(telemetry::handles().layer_filtered->value(),
            filtered_before + 1);
  EXPECT_EQ(engine.fast_forwards(), 5u);  // 3 dense + 2 masked forks
}

// ---------------------------------------------------------------------
// Scenario-level differential + chaos determinism.

ScenarioResult run_scenario(const ScenarioConfig& scn) {
  reset_telemetry();
  SystemConfig sys_cfg = paper_system_config(31);
  sys_cfg.countries = 2;
  sys_cfg.nodes_per_country = 3;
  LiveNetSystem system(sys_cfg);
  ScenarioRunner runner(system, scn);
  return runner.run();
}

ScenarioConfig small_scenario() {
  ScenarioConfig scn;
  scn.duration = 40 * kSec;
  scn.day_length = 20 * kSec;
  scn.broadcasts = 3;
  scn.viewer_rate_peak = 1.0;
  scn.mean_view_time = 10 * kSec;
  scn.seed = 77;
  return scn;
}

std::string all_csv(const ScenarioResult& r) {
  std::ostringstream os;
  os << "# sessions\n";
  write_sessions_csv(r, os);
  os << "# views\n";
  write_views_csv(r, os);
  os << "# path_requests\n";
  write_path_requests_csv(r, os);
  os << "# timeline\n";
  write_timeline_csv(r, os);
  os << "# faults\n";
  write_faults_csv(r, os);
  return os.str();
}

/// Registry dump minus brain.recompute_* (the only wall-clock metrics).
std::string metrics_json_sans_wallclock() {
  std::ostringstream os;
  telemetry::MetricsRegistry::instance().write_json(os);
  std::istringstream in(os.str());
  std::string line;
  std::string out;
  while (std::getline(in, line)) {
    if (line.find("brain.recompute_") != std::string::npos) continue;
    out += line;
    out += '\n';
  }
  return out;
}

TEST(SvcDifferential, SvcOffIsByteIdenticalToPreSvcWorld) {
  // Three spellings of "off": untouched defaults, the explicit
  // --svc-mode off knob, and a zero viewer mask (sanitized to
  // all-layers at the client). All must produce byte-identical CSVs
  // and metrics — SVC machinery is invisible until a lattice exists.
  const ScenarioConfig base = small_scenario();
  const std::string ref_csv = all_csv(run_scenario(base));
  const std::string ref_metrics = metrics_json_sans_wallclock();
  ASSERT_FALSE(ref_csv.empty());

  ScenarioConfig off = small_scenario();
  ASSERT_TRUE(apply_svc_mode(off, "off"));
  EXPECT_EQ(all_csv(run_scenario(off)), ref_csv);
  EXPECT_EQ(metrics_json_sans_wallclock(), ref_metrics);

  ScenarioConfig zero_mask = small_scenario();
  zero_mask.viewer_layer_mask = 0;
  EXPECT_EQ(all_csv(run_scenario(zero_mask)), ref_csv);
  EXPECT_EQ(metrics_json_sans_wallclock(), ref_metrics);

  EXPECT_FALSE(apply_svc_mode(off, "L9T9"));  // unknown modes rejected
}

TEST(SvcChaos, MaskFlipsUnderFaultsAreDeterministicAndZeroCopy) {
  // L3T3 with viewers starting on the base spatial column, chaos faults
  // flapping links mid-stream: up-switch requests race keyframes, narrow
  // requests race losses, and every RTX/FEC/cache path runs against
  // layer-filtered links. Two identical runs must agree byte-for-byte —
  // any stale-layer resurrection (a filtered seq sneaking back in via
  // recovery) would show up as a diverging delivery order or duplicate
  // accounting across the paths.
  ScenarioConfig scn = small_scenario();
  ASSERT_TRUE(apply_svc_mode(scn, "L3T3"));
  scn.viewer_layer_mask = lattice_mask(1, 3);  // base spatial column
  scn.faults.seed = 5;
  scn.faults.link_flaps_per_min = 1.0;
  scn.faults.degrades_per_min = 1.0;

  const std::uint64_t copies_before = media::RtpBody::deep_copy_count();
  const std::string first = all_csv(run_scenario(scn));
  const std::string first_metrics = metrics_json_sans_wallclock();
  const auto& h = telemetry::handles();
  // The lattice is live: enhancement packets were filtered without
  // copies, masks flipped, and at least one widen waited for its
  // decodability anchor (keyframe / T0 commit gate).
  EXPECT_GT(h.layer_filtered->value(), 0u);
  EXPECT_GT(h.svc_mask_flips->value(), 0u);
  EXPECT_GT(h.svc_upswitch_wait_ms->histogram().count(), 0u);
  EXPECT_EQ(media::RtpBody::deep_copy_count(), copies_before);

  const std::string second = all_csv(run_scenario(scn));
  EXPECT_EQ(first, second);
  EXPECT_EQ(first_metrics, metrics_json_sans_wallclock());
}

}  // namespace
}  // namespace livenet
