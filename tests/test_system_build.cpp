#include <gtest/gtest.h>

#include "livenet/defaults.h"
#include "livenet/report.h"
#include "livenet/system.h"

// Construction-level tests for the system façades: footprint shape,
// underlay determinism and fairness between LiveNet and Hier, DNS
// mapping behaviour, and operational knobs.
namespace livenet {
namespace {

TEST(SystemBuild, LiveNetFootprintShape) {
  SystemConfig cfg = paper_system_config();
  LiveNetSystem sys(cfg);
  sys.build_once();

  const int total = cfg.countries * cfg.nodes_per_country;
  EXPECT_EQ(sys.overlay_node_ids().size(), static_cast<std::size_t>(total));
  EXPECT_EQ(sys.backbone_ids().size(), static_cast<std::size_t>(cfg.countries));
  EXPECT_EQ(sys.edge_nodes().size(),
            static_cast<std::size_t>(total - cfg.countries));
  EXPECT_EQ(sys.last_resort_ids().size(),
            static_cast<std::size_t>(cfg.last_resort_nodes));

  // Full mesh among CDN nodes (including last-resort relays).
  const auto n = sys.overlay_node_ids().size() + sys.last_resort_ids().size();
  std::size_t links = 0;
  for (const auto a : sys.overlay_node_ids()) {
    for (const auto b : sys.overlay_node_ids()) {
      if (a != b && sys.network().link(a, b) != nullptr) ++links;
    }
  }
  EXPECT_EQ(links, (sys.overlay_node_ids().size()) *
                       (sys.overlay_node_ids().size() - 1));
  EXPECT_EQ(sys.cdn_links().size(), n * (n - 1));
}

TEST(SystemBuild, BackbonesAreNeverDnsTargets) {
  SystemConfig cfg = paper_system_config();
  LiveNetSystem sys(cfg);
  sys.build_once();
  for (int i = 0; i < 200; ++i) {
    const auto site = sys.geo().sample_site();
    const auto edge = sys.map_client_to_edge(site);
    for (const auto bb : sys.backbone_ids()) {
      EXPECT_NE(edge, bb);
    }
  }
}

TEST(SystemBuild, SharedUnderlayBetweenSystems) {
  // LiveNet and Hier built from the same seed share the first node
  // sites and see the same link propagation between those nodes.
  SystemConfig cfg = paper_system_config(/*seed=*/123);
  LiveNetSystem ln(cfg);
  HierSystem hr(cfg);
  ln.build_once();
  hr.build_once();

  const int shared = cfg.countries * cfg.nodes_per_country;
  for (int a = 0; a < shared; ++a) {
    EXPECT_EQ(ln.country_of_node(a), hr.country_of_node(a));
    const auto& sa = ln.node_sites()[static_cast<std::size_t>(a)];
    const auto& sb = hr.node_sites()[static_cast<std::size_t>(a)];
    EXPECT_DOUBLE_EQ(sa.x, sb.x);
    EXPECT_DOUBLE_EQ(sa.y, sb.y);
  }
  // Same underlay: identical propagation for the common node pairs
  // where both systems created a link (LiveNet mesh covers all pairs;
  // Hier has L1<->L2 links outside this set).
  const auto* l_ln = ln.network().link(5, 7);
  ASSERT_NE(l_ln, nullptr);
}

TEST(SystemBuild, InflationDeterministicPerPair) {
  SystemConfig cfg = paper_system_config(/*seed=*/5);
  LiveNetSystem a(cfg), b(cfg);
  a.build_once();
  b.build_once();
  for (const auto x : a.overlay_node_ids()) {
    for (const auto y : a.overlay_node_ids()) {
      if (x == y) continue;
      ASSERT_NE(a.network().link(x, y), nullptr);
      EXPECT_EQ(a.network().link(x, y)->propagation_delay(),
                b.network().link(x, y)->propagation_delay());
    }
  }
}

TEST(SystemBuild, EdgeLinksSlowerThanBackboneLinks) {
  // Average inflation of edge-edge links must exceed edge-backbone,
  // which must exceed backbone-backbone — the premise of 2-hop routing.
  SystemConfig cfg = paper_system_config(/*seed=*/9);
  LiveNetSystem sys(cfg);
  sys.build_once();

  auto avg_ratio = [&](const std::vector<sim::NodeId>& from,
                       const std::vector<sim::NodeId>& to) {
    double sum = 0.0;
    int n = 0;
    for (const auto a : from) {
      for (const auto b : to) {
        if (a == b) continue;
        const auto* l = sys.network().link(a, b);
        if (l == nullptr) continue;
        const auto geo = sys.geo().one_way_delay(
            sys.node_sites()[static_cast<std::size_t>(a)],
            sys.node_sites()[static_cast<std::size_t>(b)]);
        if (geo <= 0) continue;
        sum += static_cast<double>(l->propagation_delay()) /
               static_cast<double>(geo);
        ++n;
      }
    }
    return n > 0 ? sum / n : 0.0;
  };
  const auto edges = sys.edge_nodes();
  const auto& bbs = sys.backbone_ids();
  const double ee = avg_ratio(edges, edges);
  const double eb = avg_ratio(edges, bbs);
  const double bb = avg_ratio(bbs, bbs);
  EXPECT_GT(ee, eb);
  EXPECT_GT(eb, bb);
}

TEST(SystemBuild, CapacityScalingAffectsAllCdnLinks) {
  SystemConfig cfg = paper_system_config();
  LiveNetSystem sys(cfg);
  sys.build_once();
  const double before = sys.cdn_links().front()->bandwidth_bps();
  sys.scale_capacity(1.25);
  for (const auto* l : sys.cdn_links()) {
    EXPECT_NEAR(l->bandwidth_bps(), before * 1.25, 1.0);
  }
  sys.scale_capacity(1.0 / 1.25);
  EXPECT_NEAR(sys.cdn_links().front()->bandwidth_bps(), before, 1.0);
}

TEST(SystemBuild, LossScaleAppliesToBase) {
  SystemConfig cfg = paper_system_config();
  cfg.base_loss_rate = 0.001;
  LiveNetSystem sys(cfg);
  sys.build_once();
  sys.set_loss_scale(3.0);
  EXPECT_NEAR(sys.cdn_links().front()->loss_rate(), 0.003, 1e-9);
  sys.set_loss_scale(1.0);
  EXPECT_NEAR(sys.cdn_links().front()->loss_rate(), 0.001, 1e-9);
}

TEST(Report, HeadlineMetricsWindowing) {
  ScenarioResult r;
  r.day_length = 60 * kSec;
  auto& s1 = r.overlay.sessions().emplace_back();
  s1.request_time = 10 * kSec;
  s1.path_length = 2;
  s1.cdn_delay_ms.add(100);
  auto& s2 = r.overlay.sessions().emplace_back();
  s2.request_time = 70 * kSec;
  s2.path_length = 3;
  s2.cdn_delay_ms.add(300);

  const auto all = headline_metrics(r);
  EXPECT_EQ(all.sessions, 2u);
  const auto day1 = headline_metrics(r, 0, 60 * kSec);
  EXPECT_EQ(day1.sessions, 1u);
  EXPECT_NEAR(day1.cdn_path_delay_ms_median, 100.0, 1e-9);
}

TEST(Report, PathLengthDistributionNormalizes) {
  overlay::ViewSession a, b, c;
  a.path_length = 2;
  a.cdn_delay_ms.add(1);
  b.path_length = 2;
  b.cdn_delay_ms.add(1);
  c.path_length = 0;
  c.cdn_delay_ms.add(1);
  const auto d = path_length_distribution({&a, &b, &c});
  EXPECT_EQ(d.count, 3u);
  EXPECT_NEAR(d.len2, 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(d.len0, 1.0 / 3.0, 1e-9);
  EXPECT_NEAR(d.len0 + d.len1 + d.len2 + d.len3_plus, 1.0, 1e-9);
}

}  // namespace
}  // namespace livenet
