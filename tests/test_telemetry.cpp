#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "media/rtp.h"
#include "sim/link.h"
#include "sim/network.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

// Unit tests for the telemetry layer (metrics registry + per-hop
// tracing) and an end-to-end 3-hop trace through a sim Network.
namespace livenet::telemetry {
namespace {

/// Both singletons are process-wide; every test starts them clean.
class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::instance().reset();
    MetricsRegistry::instance().reset();
  }
};

// --------------------------------------------------------------- Registry

using RegistryTest = TelemetryTest;

TEST_F(RegistryTest, RegistrationIsIdempotentAndStable) {
  Counter* a = MetricsRegistry::instance().counter("t.c1");
  Counter* b = MetricsRegistry::instance().counter("t.c1");
  EXPECT_EQ(a, b);
  a->add(3);
  EXPECT_EQ(b->value(), 3u);

  Gauge* g1 = MetricsRegistry::instance().gauge("t.g1");
  EXPECT_EQ(g1, MetricsRegistry::instance().gauge("t.g1"));
  LatencyStat* l1 =
      MetricsRegistry::instance().latency("t.l1", 0.0, 100.0, 10);
  EXPECT_EQ(l1, MetricsRegistry::instance().latency("t.l1", 0.0, 100.0, 10));
}

TEST_F(RegistryTest, GaugeSetMaxKeepsHighWaterMark) {
  Gauge* g = MetricsRegistry::instance().gauge("t.hwm");
  g->set_max(5.0);
  g->set_max(9.0);
  g->set_max(2.0);
  EXPECT_DOUBLE_EQ(g->value(), 9.0);
}

TEST_F(RegistryTest, LatencyStatObservesIntoHistogram) {
  LatencyStat* l = MetricsRegistry::instance().latency("t.lat", 0.0, 10.0, 10);
  for (int i = 0; i < 100; ++i) l->observe(5.0);
  EXPECT_EQ(l->stats().count(), 100u);
  EXPECT_DOUBLE_EQ(l->stats().mean(), 5.0);
}

TEST_F(RegistryTest, ResetZeroesValuesButKeepsHandles) {
  Counter* c = MetricsRegistry::instance().counter("t.rst");
  c->add(7);
  MetricsRegistry::instance().reset();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(MetricsRegistry::instance().counter("t.rst"), c);
}

TEST_F(RegistryTest, JsonExportContainsSectionsAndNames) {
  MetricsRegistry::instance().counter("t.json_counter")->add(4);
  MetricsRegistry::instance().gauge("t.json_gauge")->set(1.5);
  MetricsRegistry::instance().latency("t.json_lat", 0.0, 10.0, 5)
      ->observe(2.0);
  std::ostringstream os;
  MetricsRegistry::instance().write_json(os);
  const std::string j = os.str();
  EXPECT_NE(j.find("\"counters\""), std::string::npos);
  EXPECT_NE(j.find("\"gauges\""), std::string::npos);
  EXPECT_NE(j.find("\"latencies\""), std::string::npos);
  EXPECT_NE(j.find("\"t.json_counter\": 4"), std::string::npos);
  EXPECT_NE(j.find("\"t.json_gauge\": 1.5"), std::string::npos);
  EXPECT_NE(j.find("\"t.json_lat\""), std::string::npos);
}

TEST_F(RegistryTest, PreRegisteredHandlesCoverDataPlane) {
  const Handles& h = handles();
  h.fast_forwards->add();
  h.drops_b->add();
  h.cache_hits->add(2);
  std::ostringstream os;
  MetricsRegistry::instance().write_json(os);
  EXPECT_NE(os.str().find("\"overlay.fast_forwards\": 1"), std::string::npos);
  EXPECT_NE(os.str().find("\"overlay.cache_hits\": 2"), std::string::npos);
}

// ----------------------------------------------------------------- Tracer

using TracerTest = TelemetryTest;

TEST_F(TracerTest, InactiveUntilFirstIdAndAfterReset) {
  EXPECT_FALSE(Tracer::active());
  const std::uint64_t id = Tracer::instance().next_trace_id();
  EXPECT_NE(id, 0u);
  EXPECT_TRUE(Tracer::active());
  Tracer::instance().reset();
  EXPECT_FALSE(Tracer::active());
}

TEST_F(TracerTest, RecordHopIgnoresUntracedPackets) {
  record_hop(0, 10, 1, 1, 0, 1, HopEvent::kForward);
  EXPECT_EQ(Tracer::instance().records_total(), 0u);
  record_hop(1, 10, 1, 1, 0, 1, HopEvent::kForward);
  EXPECT_EQ(Tracer::instance().records_total(), 1u);
}

TEST_F(TracerTest, RingWrapKeepsNewestRecords) {
  Tracer& t = Tracer::instance();
  t.set_capacity(4);
  for (std::uint64_t i = 0; i < 6; ++i) {
    record_hop(1, static_cast<Time>(i), 1, i, 0, 1, HopEvent::kForward);
  }
  EXPECT_EQ(t.records_total(), 6u);
  EXPECT_EQ(t.records_dropped(), 2u);
  const std::vector<HopRecord> snap = t.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  EXPECT_EQ(snap.front().seq, 2u);  // oldest surviving
  EXPECT_EQ(snap.back().seq, 5u);
  t.set_capacity(64 * 1024);  // restore the default for later tests
}

TEST_F(TracerTest, CsvHasHeaderAndSymbolicNames) {
  record_hop(3, 42, 7, 9, 1, 2, HopEvent::kDrop, DropReason::kQueueOverflow);
  std::ostringstream os;
  Tracer::instance().write_csv(os);
  EXPECT_NE(os.str().find("trace_id,t_us,stream,seq,node,peer,event,reason"),
            std::string::npos);
  EXPECT_NE(os.str().find("3,42,7,9,1,2,drop,queue_overflow"),
            std::string::npos);
}

TEST_F(TracerTest, SamplerFractionsAreExactOverWholeBatches) {
  TraceSampler off;
  off.set_fraction(0.0);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(off.sample(), 0u);

  TraceSampler all;
  all.set_fraction(1.0);
  std::uint64_t prev = 0;
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t id = all.sample();
    EXPECT_GT(id, prev);  // fresh, monotonically increasing ids
    prev = id;
  }

  TraceSampler quarter;
  quarter.set_fraction(0.25);
  int sampled = 0;
  for (int i = 0; i < 100; ++i) {
    if (quarter.sample() != 0) ++sampled;
  }
  EXPECT_EQ(sampled, 25);  // deterministic error accumulator, no RNG
}

// ------------------------------------------------------- 3-hop trace e2e

/// Forwards every packet to a fixed next hop (sinks when kNoNode).
class Relay final : public sim::SimNode {
 public:
  explicit Relay(sim::Network* net, sim::NodeId next = sim::kNoNode)
      : net_(net), next_(next) {}
  void set_next(sim::NodeId n) { next_ = n; }
  void on_message(sim::NodeId, const sim::MessagePtr& msg) override {
    if (next_ != sim::kNoNode) net_->send(node_id(), next_, msg);
  }

 private:
  sim::Network* net_;
  sim::NodeId next_;
};

sim::LinkConfig quiet_link() {
  sim::LinkConfig lc;
  lc.propagation_delay = 10 * kMs;
  lc.bandwidth_bps = 8e6;
  lc.loss_rate = 0.0;
  lc.jitter_stddev = 0;
  return lc;
}

media::RtpPacketMut traced_packet(std::uint64_t trace_id) {
  media::RtpBody body;
  body.stream_id = 7;
  body.seq = 99;
  body.frame_type = media::FrameType::kP;
  body.frame_id = 33;
  body.gop_id = 1;
  body.payload_bytes = 1200;
  body.trace_id = trace_id;
  return media::RtpPacket::make(std::move(body));
}

struct ChainFixture {
  sim::EventLoop loop;
  sim::Network net{&loop, 1};
  Relay a{&net}, b{&net}, c{&net}, d{&net};
  sim::Link* last_link = nullptr;

  ChainFixture() {
    const sim::NodeId na = net.add_node(&a);
    const sim::NodeId nb = net.add_node(&b);
    const sim::NodeId nc = net.add_node(&c);
    const sim::NodeId nd = net.add_node(&d);
    a.set_next(nb);
    b.set_next(nc);
    c.set_next(nd);
    net.add_link(na, nb, quiet_link());
    net.add_link(nb, nc, quiet_link());
    last_link = net.add_link(nc, nd, quiet_link());
    net.freeze_topology();
  }
};

TEST_F(TracerTest, ThreeHopChainRecordsExactSequence) {
  ChainFixture f;
  const std::uint64_t id = Tracer::instance().next_trace_id();
  f.net.send(f.a.node_id(), f.b.node_id(), traced_packet(id));
  f.loop.run();

  const std::vector<HopRecord> snap = Tracer::instance().snapshot();
  ASSERT_EQ(snap.size(), 6u);  // enqueue + dequeue per hop, 3 hops
  const HopEvent expected_events[] = {
      HopEvent::kLinkEnqueue, HopEvent::kLinkDequeue,
      HopEvent::kLinkEnqueue, HopEvent::kLinkDequeue,
      HopEvent::kLinkEnqueue, HopEvent::kLinkDequeue,
  };
  const std::int32_t expected_nodes[] = {
      f.a.node_id(), f.b.node_id(), f.b.node_id(),
      f.c.node_id(), f.c.node_id(), f.d.node_id(),
  };
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(snap[i].event, expected_events[i]) << "hop " << i;
    EXPECT_EQ(snap[i].node, expected_nodes[i]) << "hop " << i;
    EXPECT_EQ(snap[i].trace_id, id);
    EXPECT_EQ(snap[i].stream, 7u);
    EXPECT_EQ(snap[i].seq, 99u);
    EXPECT_EQ(snap[i].reason, DropReason::kNone);
  }
  // Per-hop latency: each wire adds serialization + 10 ms propagation;
  // timestamps are monotone along the reconstructed path.
  for (std::size_t i = 1; i < 6; ++i) {
    EXPECT_GE(snap[i].t, snap[i - 1].t);
  }
  const Duration per_hop =
      10 * kMs + static_cast<Duration>(traced_packet(1)->wire_size());
  EXPECT_EQ(snap[5].t - snap[0].t, 3 * per_hop);
}

TEST_F(TracerTest, DownedLastHopRecordsDropWithReason) {
  ChainFixture f;
  f.last_link->set_down(true);
  const std::uint64_t id = Tracer::instance().next_trace_id();
  f.net.send(f.a.node_id(), f.b.node_id(), traced_packet(id));
  f.loop.run();

  const std::vector<HopRecord> snap = Tracer::instance().snapshot();
  ASSERT_EQ(snap.size(), 5u);  // 2 delivered hops + the drop
  EXPECT_EQ(snap.back().event, HopEvent::kDrop);
  EXPECT_EQ(snap.back().reason, DropReason::kLinkDown);
  EXPECT_EQ(snap.back().node, f.c.node_id());
  EXPECT_EQ(snap.back().peer, f.d.node_id());
  EXPECT_EQ(handles().link_drops_down->value(), 1u);
}

}  // namespace
}  // namespace livenet::telemetry
