#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "util/rng.h"
#include "util/stats.h"

namespace livenet {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LE(same, 1);
}

TEST(Rng, UniformInRange) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntCoversBoundsInclusive) {
  Rng r(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = r.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    saw_lo |= (v == 3);
    saw_hi |= (v == 7);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ExponentialMeanApproximatelyCorrect) {
  Rng r(11);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.2);
}

TEST(Rng, ChanceFrequencyMatchesProbability) {
  Rng r(13);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    if (r.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, LognormalMeanOneConstructionIsUnbiased) {
  // lognormal(-sigma^2/2, sigma) has mean 1: the frame-size jitter model
  // relies on this to conserve the configured bitrate.
  Rng r(17);
  const double sigma = 0.4;
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    sum += r.lognormal(-0.5 * sigma * sigma, sigma);
  }
  EXPECT_NEAR(sum / n, 1.0, 0.03);
}

TEST(OnlineStats, MeanVarianceMinMax) {
  OnlineStats s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(OnlineStats, MergeMatchesCombinedStream) {
  OnlineStats a, b, all;
  Rng r(23);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.normal(10.0, 3.0);
    (i % 2 == 0 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
}

TEST(Samples, QuantilesExact) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-12);
  EXPECT_NEAR(s.quantile(0.25), 25.75, 1e-12);
}

TEST(Samples, CdfAt) {
  Samples s;
  for (int i = 1; i <= 10; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.cdf_at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.cdf_at(5.0), 0.5);
  EXPECT_DOUBLE_EQ(s.cdf_at(10.0), 1.0);
}

TEST(Samples, BoxplotPercentiles) {
  Samples s;
  for (int i = 0; i <= 100; ++i) s.add(i);
  const BoxStats b = boxplot(s);
  EXPECT_NEAR(b.p20, 20.0, 1e-9);
  EXPECT_NEAR(b.p50, 50.0, 1e-9);
  EXPECT_NEAR(b.p80, 80.0, 1e-9);
}

TEST(Histogram, BucketsAndQuantiles) {
  Histogram h(0.0, 100.0, 10);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.bucket(0), 10u);
  EXPECT_EQ(h.underflow(), 0u);
  EXPECT_EQ(h.overflow(), 0u);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
}

TEST(Histogram, InvalidConstructionThrowsBeforeDividing) {
  // buckets == 0 used to divide by zero in the member initializers
  // before the guard ran; all three invalid shapes must throw cleanly.
  EXPECT_THROW(Histogram(0.0, 100.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(100.0, 100.0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(100.0, 0.0, 10), std::invalid_argument);
}

TEST(Histogram, OverUnderflowCounted) {
  Histogram h(0.0, 10.0, 5);
  h.add(-1.0);
  h.add(11.0);
  h.add(5.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.count(), 3u);
}

TEST(RatioCounter, Percent) {
  RatioCounter rc;
  for (int i = 0; i < 95; ++i) rc.add(true);
  for (int i = 0; i < 5; ++i) rc.add(false);
  EXPECT_DOUBLE_EQ(rc.percent(), 95.0);
}

TEST(WelchT, LargeSeparationGivesLargeT) {
  OnlineStats a, b;
  Rng r(31);
  for (int i = 0; i < 2000; ++i) {
    a.add(r.normal(100.0, 10.0));
    b.add(r.normal(105.0, 10.0));
  }
  // 5-sigma-ish separation over 2000 samples: |t| far above 3.3
  EXPECT_LT(welch_t_statistic(a, b), -3.3);
}

}  // namespace
}  // namespace livenet
