#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "client/viewer.h"
#include "client/viewer_cohort.h"
#include "media/packetizer.h"
#include "media/rtp.h"
#include "media/video_source.h"
#include "overlay/messages.h"
#include "sim/fault_injector.h"
#include "sim/network.h"

// ViewerCohort differential coverage (ISSUE 7 satellites 1 and 3):
//  - a cohort with multiplier K reports exactly K x the QoE counters of
//    K explicit viewers under identical seeds on a 3-node chain, with
//    and without a scripted link-flap fault plan;
//  - a migrate() between two quality reports neither double-counts nor
//    loses the interval's stalls/skips, and leaves exactly one report
//    timer running.
namespace livenet::client {
namespace {

using media::RtpPacket;
using sim::NodeId;

constexpr media::StreamId kStream = 7;

/// Test feeder: packetizes a deterministic synthetic video stream and
/// pushes every packet to its children (3-node-chain head).
class Feeder final : public sim::SimNode {
 public:
  Feeder(sim::Network* net, std::uint64_t seed) : net_(net) {
    media::VideoSourceConfig vcfg;
    vcfg.bitrate_bps = 1.5e6;
    source_ = std::make_unique<media::VideoSource>(kStream, vcfg, Rng(seed));
    packetizer_ = std::make_unique<media::Packetizer>(kStream);
  }

  void add_child(NodeId c) { children_.push_back(c); }
  void start() { tick(); }
  void on_message(NodeId, const sim::MessagePtr&) override {}

 private:
  void tick() {
    const media::Frame f = source_->next_frame(net_->loop()->now());
    for (auto& pkt : packetizer_->packetize(f)) {
      const media::RtpPacketPtr shared = std::move(pkt);
      for (const NodeId c : children_) net_->send(node_id(), c, shared);
    }
    net_->loop()->schedule_after(source_->frame_interval(),
                                 [this] { tick(); });
  }

  sim::Network* net_;
  std::unique_ptr<media::VideoSource> source_;
  std::unique_ptr<media::Packetizer> packetizer_;
  std::vector<NodeId> children_;
};

/// Pass-through relay (the chain's middle node).
class Relay final : public sim::SimNode {
 public:
  explicit Relay(sim::Network* net) : net_(net) {}
  void add_child(NodeId c) { children_.push_back(c); }
  void on_message(NodeId, const sim::MessagePtr& msg) override {
    if (sim::msg_cast<const RtpPacket>(msg) == nullptr) return;
    for (const NodeId c : children_) net_->send(node_id(), c, msg);
  }

 private:
  sim::Network* net_;
  std::vector<NodeId> children_;
};

/// Thin-client consumer stub: ok-acks views, fans the stream out to
/// subscribers, records every quality report verbatim.
class Consumer final : public sim::SimNode {
 public:
  explicit Consumer(sim::Network* net) : net_(net) {}

  struct Report {
    NodeId viewer;
    std::uint32_t stalls;
    std::uint32_t skips;
  };

  void on_message(NodeId from, const sim::MessagePtr& msg) override {
    if (sim::msg_cast<const RtpPacket>(msg) != nullptr) {
      for (const NodeId v : subscribers_) net_->send(node_id(), v, msg);
      return;
    }
    if (const auto req = sim::msg_cast<const overlay::ViewRequest>(msg)) {
      subscribers_.push_back(from);
      auto ack = sim::make_message<overlay::ViewAck>();
      ack->stream_id = req->stream_id;
      net_->send(node_id(), from, std::move(ack));
      return;
    }
    if (sim::msg_cast<const overlay::ViewStop>(msg) != nullptr) {
      std::erase(subscribers_, from);
      return;
    }
    if (const auto rep =
            sim::msg_cast<const overlay::ClientQualityReport>(msg)) {
      reports.push_back(
          Report{from, rep->stalls_since_last, rep->skips_since_last});
      return;
    }
    // NACK / CC feedback: absorbed (loss recovery is exercised through
    // receive-buffer giveup, which is what the flap scenario counts).
  }

  std::vector<Report> reports;

 private:
  sim::Network* net_;
  std::vector<NodeId> subscribers_;
};

sim::LinkConfig quiet_link(Duration delay) {
  sim::LinkConfig lc;
  lc.propagation_delay = delay;
  lc.bandwidth_bps = 1e9;
  lc.loss_rate = 0.0;
  lc.jitter_stddev = 0;  // zero randomness: cohort counters stay exact
  return lc;
}

struct QoeTotals {
  std::uint64_t stalls = 0;
  std::uint64_t dead_air = 0;
  std::uint64_t stall_us = 0;
  std::uint64_t displayed = 0;
  std::uint64_t skipped = 0;
  std::uint64_t reports = 0;
  std::uint64_t delay_samples = 0;
};

/// Runs the 3-node chain (feeder -> relay -> consumer) with either K
/// explicit viewers or one cohort of multiplier K behind the consumer.
/// `flap` adds a scripted relay->consumer link flap (the PR 1 fault
/// plan) upstream of the access links, so every viewer sees it alike.
QoeTotals run_chain(std::uint32_t k, bool cohort_mode, bool flap,
                    std::vector<QoeTotals>* per_viewer = nullptr) {
  sim::EventLoop loop;
  sim::Network net(&loop, 17);
  Feeder feeder(&net, 99);
  Relay relay(&net);
  Consumer consumer(&net);
  const NodeId fid = net.add_node(&feeder);
  const NodeId rid = net.add_node(&relay);
  const NodeId cid = net.add_node(&consumer);
  net.add_link(fid, rid, quiet_link(5 * kMs));
  net.add_link(rid, cid, quiet_link(5 * kMs));
  feeder.add_child(rid);
  relay.add_child(cid);

  ClientMetrics metrics;
  std::vector<std::unique_ptr<Viewer>> viewers;
  std::unique_ptr<ViewerCohort> cohort;
  const Time join = 400 * kMs;
  if (cohort_mode) {
    ViewerCohortConfig ccfg;
    ccfg.multiplier = k;
    ccfg.join_spread = 0;  // differential runs join at the nominal time
    cohort = std::make_unique<ViewerCohort>(&net, &metrics, 5, ccfg);
    const NodeId vid = net.add_node(&cohort->viewer());
    net.add_link(cid, vid, quiet_link(8 * kMs));
    net.add_link(vid, cid, quiet_link(8 * kMs));
    cohort->schedule_view(cid, kStream, join, kNever);
  } else {
    for (std::uint32_t i = 0; i < k; ++i) {
      auto v = std::make_unique<Viewer>(&net, &metrics);
      const NodeId vid = net.add_node(v.get());
      net.add_link(cid, vid, quiet_link(8 * kMs));
      net.add_link(vid, cid, quiet_link(8 * kMs));
      loop.schedule_at(join, [vp = v.get(), cid] {
        vp->start_view(cid, kStream);
      });
      viewers.push_back(std::move(v));
    }
  }

  sim::FaultInjector injector(&net);
  if (flap) {
    sim::FaultSpec spec;
    spec.kind = sim::FaultKind::kLinkFlap;
    spec.at = 2 * kSec;
    spec.duration = 400 * kMs;
    spec.a = rid;
    spec.b = cid;
    injector.inject(spec);
  }

  loop.schedule_at(100 * kMs, [&feeder] { feeder.start(); });
  loop.run_until(6 * kSec);

  QoeTotals t;
  if (cohort_mode) {
    const auto& q = cohort->qoe();
    t.stalls = q.stalls();
    t.dead_air = q.dead_air_stalls();
    t.stall_us = q.total_stall_time_us();
    t.displayed = q.frames_displayed();
    t.skipped = q.frames_skipped();
    t.reports = q.reports();
    t.delay_samples = q.streaming_delay_ms().count();
    EXPECT_EQ(metrics.modeled_viewers(), k == 0 ? 1 : k);
  } else {
    for (const auto& v : viewers) {
      const QoeRecord* r = v->record();
      EXPECT_NE(r, nullptr);
      if (r == nullptr) continue;
      QoeTotals one;
      one.stalls = r->stalls;
      one.dead_air = r->dead_air_stalls;
      one.stall_us = static_cast<std::uint64_t>(r->total_stall_time);
      one.displayed = r->frames_displayed;
      one.skipped = r->frames_skipped;
      one.reports = v->reports_sent();
      one.delay_samples = r->streaming_delay_ms.count();
      if (per_viewer != nullptr) per_viewer->push_back(one);
      t.stalls += one.stalls;
      t.dead_air += one.dead_air;
      t.stall_us += one.stall_us;
      t.displayed += one.displayed;
      t.skipped += one.skipped;
      t.reports += one.reports;
      t.delay_samples += one.delay_samples;
    }
    EXPECT_EQ(metrics.modeled_viewers(), k);
  }
  return t;
}

void expect_equal(const QoeTotals& a, const QoeTotals& b) {
  EXPECT_EQ(a.stalls, b.stalls);
  EXPECT_EQ(a.dead_air, b.dead_air);
  EXPECT_EQ(a.stall_us, b.stall_us);
  EXPECT_EQ(a.displayed, b.displayed);
  EXPECT_EQ(a.skipped, b.skipped);
  EXPECT_EQ(a.reports, b.reports);
  EXPECT_EQ(a.delay_samples, b.delay_samples);
}

TEST(ViewerCohort, MatchesExplicitViewersExactly) {
  for (std::uint32_t k = 1; k <= 4; ++k) {
    SCOPED_TRACE(k);
    std::vector<QoeTotals> per_viewer;
    const QoeTotals explicit_sum = run_chain(k, false, false, &per_viewer);
    const QoeTotals cohort = run_chain(k, true, false);
    // The quiet last mile makes every explicit viewer bit-identical...
    for (const auto& one : per_viewer) {
      EXPECT_EQ(one.displayed, per_viewer.front().displayed);
      EXPECT_EQ(one.stalls, per_viewer.front().stalls);
      EXPECT_EQ(one.skipped, per_viewer.front().skipped);
    }
    // ...so the cohort's weighted counters equal the explicit sum.
    expect_equal(cohort, explicit_sum);
    EXPECT_GT(cohort.displayed, 0u);
    EXPECT_GT(cohort.reports, 0u);
  }
}

TEST(ViewerCohort, MatchesExplicitViewersUnderLinkFlap) {
  for (std::uint32_t k = 1; k <= 4; ++k) {
    SCOPED_TRACE(k);
    const QoeTotals explicit_sum = run_chain(k, false, true);
    const QoeTotals cohort = run_chain(k, true, true);
    expect_equal(cohort, explicit_sum);
    // The flap must actually bite, or the equality is vacuous.
    EXPECT_GT(cohort.stalls + cohort.skipped, 0u);
  }
}

TEST(ViewerCohort, SeededJoinPerturbationIsDeterministic) {
  sim::EventLoop loop;
  sim::Network net(&loop);
  ClientMetrics metrics;
  ViewerCohortConfig cfg;
  cfg.multiplier = 10;
  cfg.join_spread = 200 * kMs;
  ViewerCohort a(&net, &metrics, 1, cfg);
  ViewerCohort a2(&net, &metrics, 1, cfg);
  ViewerCohort b(&net, &metrics, 2, cfg);
  EXPECT_EQ(a.join_time(1 * kSec), a2.join_time(1 * kSec));
  EXPECT_NE(a.join_time(1 * kSec), b.join_time(1 * kSec));
  EXPECT_GE(a.join_time(1 * kSec), 1 * kSec);
  EXPECT_LT(a.join_time(1 * kSec), 1 * kSec + cfg.join_spread);
  EXPECT_EQ(a.leave_time(kNever), kNever);
  // multiplier 0 clamps to 1 (a cohort always stands for someone).
  ViewerCohortConfig zero;
  zero.multiplier = 0;
  ViewerCohort z(&net, &metrics, 3, zero);
  EXPECT_EQ(z.multiplier(), 1u);
}

// Satellite 1: migrating between two quality reports must conserve the
// interval's stalls/skips (no double count, no loss) and must leave
// exactly one report timer running.
TEST(ViewerMigrate, ReportCadenceSurvivesMidIntervalMigrate) {
  sim::EventLoop loop;
  sim::Network net(&loop, 23);
  Feeder feeder(&net, 99);
  Consumer c1(&net);
  Consumer c2(&net);
  const NodeId fid = net.add_node(&feeder);
  const NodeId id1 = net.add_node(&c1);
  const NodeId id2 = net.add_node(&c2);
  // Both consumers carry the stream the whole time; the viewer switches
  // between them.
  net.add_link(fid, id1, quiet_link(5 * kMs));
  net.add_link(fid, id2, quiet_link(5 * kMs));
  feeder.add_child(id1);
  feeder.add_child(id2);

  ClientMetrics metrics;
  Viewer viewer(&net, &metrics);
  const NodeId vid = net.add_node(&viewer);
  for (const NodeId cid : {id1, id2}) {
    net.add_link(cid, vid, quiet_link(8 * kMs));
    net.add_link(vid, cid, quiet_link(8 * kMs));
  }

  loop.schedule_at(100 * kMs, [&feeder] { feeder.start(); });
  loop.schedule_at(200 * kMs,
                   [&viewer, id1] { viewer.start_view(id1, kStream); });
  // Lose ~6 frames just before the migrate: the flap's holes are still
  // unreported (and some still inside the receive buffer / framer) when
  // the viewer switches consumers mid report interval.
  sim::Link* last_mile = net.link(id1, vid);
  loop.schedule_at(2400 * kMs, [last_mile] { last_mile->set_down(true); });
  loop.schedule_at(2600 * kMs, [last_mile] { last_mile->set_down(false); });
  loop.schedule_at(2700 * kMs, [&viewer, id2] { viewer.migrate(id2); });
  loop.run_until(5400 * kMs);

  const QoeRecord* rec = viewer.record();
  ASSERT_NE(rec, nullptr);
  EXPECT_GT(rec->frames_skipped, 0u) << "the flap must cost frames";
  EXPECT_GT(rec->frames_displayed, 0u);

  // Reports fire every second from view start (1.2 s, 2.2 s, ... 5.2 s):
  // exactly one timer must survive the migrate — neither zero (dangling
  // cancel) nor two (duplicate schedule).
  const std::size_t total_reports = c1.reports.size() + c2.reports.size();
  EXPECT_EQ(viewer.reports_sent(), total_reports);
  EXPECT_EQ(total_reports, 5u);

  // Conservation: everything the record counted by the last report was
  // reported exactly once, across both consumers. (The run ends 200 ms
  // after the final report; the feeder keeps the stream clean after the
  // flap, so no stalls/skips accrue in that tail.)
  std::uint64_t reported_stalls = 0;
  std::uint64_t reported_skips = 0;
  for (const auto* reports : {&c1.reports, &c2.reports}) {
    for (const auto& r : *reports) {
      reported_stalls += r.stalls;
      reported_skips += r.skips;
    }
  }
  EXPECT_EQ(reported_stalls, rec->stalls);
  EXPECT_EQ(reported_skips, rec->frames_skipped);
}

}  // namespace
}  // namespace livenet::client
