#include <gtest/gtest.h>

#include <cmath>

#include "workload/geo.h"
#include "workload/patterns.h"

namespace livenet::workload {
namespace {

TEST(Geo, SitesStayWithinCountryRadius) {
  GeoConfig cfg;
  cfg.countries = 4;
  cfg.country_radius = 30.0;
  GeoModel geo(cfg, Rng(5));
  for (int c = 0; c < cfg.countries; ++c) {
    const GeoSite center = geo.center_site(c);
    for (int i = 0; i < 200; ++i) {
      const GeoSite s = geo.sample_site(c);
      EXPECT_EQ(s.country, c);
      const double dx = s.x - center.x, dy = s.y - center.y;
      EXPECT_LE(std::sqrt(dx * dx + dy * dy), cfg.country_radius + 1e-9);
    }
  }
}

TEST(Geo, OneWayDelayIsMetricLike) {
  GeoConfig cfg;
  GeoModel geo(cfg, Rng(5));
  const GeoSite a = geo.sample_site(0);
  const GeoSite b = geo.sample_site(1);
  EXPECT_EQ(geo.one_way_delay(a, b), geo.one_way_delay(b, a));  // symmetric
  EXPECT_GE(geo.one_way_delay(a, b), cfg.min_one_way);          // floored
  EXPECT_GE(geo.one_way_delay(a, a), cfg.min_one_way);
}

TEST(Geo, InterCountryFartherThanIntraOnAverage) {
  GeoConfig cfg;
  cfg.countries = 5;
  GeoModel geo(cfg, Rng(7));
  double intra = 0.0, inter = 0.0;
  const int n = 300;
  for (int i = 0; i < n; ++i) {
    intra += static_cast<double>(
        geo.one_way_delay(geo.sample_site(0), geo.sample_site(0)));
    inter += static_cast<double>(
        geo.one_way_delay(geo.sample_site(0), geo.sample_site(2)));
  }
  EXPECT_GT(inter, 1.5 * intra);
}

TEST(Diurnal, BoundedAndPeaksInEvening) {
  DiurnalCurve curve(0.25, 1.0);
  double peak_val = 0.0, peak_hour = 0.0;
  for (double h = 0; h < 24.0; h += 0.25) {
    const double v = curve.at_hour(h);
    EXPECT_GE(v, 0.25 - 1e-9);
    EXPECT_LE(v, 1.0 + 1e-9);
    if (v > peak_val) {
      peak_val = v;
      peak_hour = h;
    }
  }
  EXPECT_GE(peak_hour, 18.0);  // evening peak (paper: 8-11 pm)
  EXPECT_LE(peak_hour, 23.0);
  // Trough in the small hours.
  EXPECT_LT(curve.at_hour(4.5), curve.at_hour(21.0) * 0.5);
}

TEST(Diurnal, HourOfMapsCompressedDays) {
  DiurnalCurve curve;
  const Duration day = 60 * kSec;
  EXPECT_NEAR(curve.hour_of(0, day), 0.0, 1e-9);
  EXPECT_NEAR(curve.hour_of(30 * kSec, day), 12.0, 1e-9);
  EXPECT_NEAR(curve.hour_of(day + 15 * kSec, day), 6.0, 1e-9);
}

TEST(Zipf, RankZeroMostPopularAndMonotone) {
  ZipfSampler zipf(50, 1.1);
  Rng rng(3);
  std::vector<int> counts(50, 0);
  for (int i = 0; i < 50000; ++i) ++counts[zipf.sample(rng)];
  EXPECT_GT(counts[0], counts[5]);
  EXPECT_GT(counts[5], counts[25]);
  // Rank 0 of Zipf(1.1, 50) carries roughly a quarter of the mass.
  EXPECT_GT(counts[0], 50000 / 6);
}

TEST(Zipf, SingleItemAlwaysRankZero) {
  ZipfSampler zipf(1, 1.0);
  Rng rng(4);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.sample(rng), 0u);
}

TEST(Demand, FlashWindowMultiplies) {
  DemandModel demand(2.0, DiurnalCurve(1.0, 1.0), 60 * kSec);  // flat curve
  FlashWindow w;
  w.start = 10 * kSec;
  w.end = 20 * kSec;
  w.multiplier = 3.0;
  demand.add_flash(w);
  EXPECT_NEAR(demand.rate_at(5 * kSec), 2.0, 1e-9);
  EXPECT_NEAR(demand.rate_at(15 * kSec), 6.0, 1e-9);
  EXPECT_NEAR(demand.rate_at(25 * kSec), 2.0, 1e-9);
}

TEST(Demand, DiurnalAndFlashCompose) {
  DemandModel demand(10.0, DiurnalCurve(0.2, 1.0), 24 * kSec);  // 1s = 1h
  FlashWindow w;
  w.start = 0;
  w.end = 24 * kSec;
  w.multiplier = 2.0;
  demand.add_flash(w);
  // At every hour the rate is exactly 2x the diurnal base.
  DemandModel base(10.0, DiurnalCurve(0.2, 1.0), 24 * kSec);
  for (Time t = 0; t < 24 * kSec; t += kSec) {
    EXPECT_NEAR(demand.rate_at(t), 2.0 * base.rate_at(t), 1e-9);
  }
}

}  // namespace
}  // namespace livenet::workload
