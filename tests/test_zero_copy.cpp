#include <gtest/gtest.h>

#include <memory>
#include <utility>

#include "media/packetizer.h"
#include "media/rtp.h"
#include "sim/event_loop.h"
#include "sim/message.h"

// The zero-copy contract of the forwarding fast path: fan-out forks a
// per-hop trailer and shares the immutable body; cancellation releases
// captured packet references immediately, not at the event's timestamp.
namespace livenet {
namespace {

using media::FrameType;
using media::RtpBody;
using media::RtpPacket;

media::RtpPacketMut make_pkt(media::StreamId s, media::Seq seq,
                             FrameType t = FrameType::kP) {
  RtpBody body;
  body.stream_id = s;
  body.seq = seq;
  body.frame_id = 9;
  body.gop_id = 3;
  body.frame_type = t;
  body.frag_index = 1;
  body.frag_count = 4;
  body.payload_bytes = 1100;
  body.capture_time = 123 * kMs;
  return RtpPacket::make(std::move(body));
}

TEST(ZeroCopy, ForkSharesBodyWithoutDeepCopy) {
  const auto base = RtpBody::deep_copy_count();
  auto pkt = make_pkt(7, 42);
  std::vector<media::RtpPacketMut> clones;
  for (int i = 0; i < 64; ++i) clones.push_back(pkt->fork());
  EXPECT_EQ(RtpBody::deep_copy_count(), base);  // zero body copies
  for (const auto& c : clones) {
    EXPECT_EQ(c->stream_id(), 7u);
    EXPECT_EQ(c->producer_seq(), 42u);
    EXPECT_EQ(c->payload_bytes(), 1100u);
    EXPECT_EQ(c->capture_time(), 123 * kMs);
  }
}

TEST(ZeroCopy, TrailerIsPerHopState) {
  auto pkt = make_pkt(1, 10);
  pkt->delay_ext_us = 500;
  pkt->cdn_hops = 2;
  auto clone = pkt->fork();
  clone->delay_ext_us = 900;
  clone->cdn_hops = 3;
  clone->is_rtx = true;
  clone->seq = 77;  // edge-side client-facing seq rewrite
  // The original hop's trailer is untouched...
  EXPECT_EQ(pkt->delay_ext_us, 500);
  EXPECT_EQ(pkt->cdn_hops, 2);
  EXPECT_FALSE(pkt->is_rtx);
  EXPECT_EQ(pkt->seq, 10u);
  // ...and the shared body still answers identically through both.
  EXPECT_EQ(clone->producer_seq(), 10u);
  EXPECT_EQ(pkt->producer_seq(), 10u);
  EXPECT_EQ(clone->frame_id(), pkt->frame_id());
}

TEST(ZeroCopy, CloneWithDelayAccumulates) {
  const auto base = RtpBody::deep_copy_count();
  auto pkt = make_pkt(1, 1);
  pkt->delay_ext_us = 100;
  auto hop1 = pkt->clone_with_delay(40);
  auto hop2 = hop1->clone_with_delay(60);
  EXPECT_EQ(hop1->delay_ext_us, 140);
  EXPECT_EQ(hop2->delay_ext_us, 200);
  EXPECT_EQ(pkt->delay_ext_us, 100);
  EXPECT_EQ(RtpBody::deep_copy_count(), base);
}

TEST(ZeroCopy, PacketizerOutputForksCleanly) {
  const auto base = RtpBody::deep_copy_count();
  media::Packetizer p(5);
  media::Frame f;
  f.stream_id = 5;
  f.frame_id = 1;
  f.gop_id = 1;
  f.type = FrameType::kI;
  f.size_bytes = 5000;
  const auto pkts = p.packetize(f);
  ASSERT_GT(pkts.size(), 1u);
  for (const auto& pkt : pkts) {
    auto c = pkt->fork();
    EXPECT_EQ(c->frag_count(), pkts.size());
  }
  EXPECT_EQ(RtpBody::deep_copy_count(), base);
}

// A cancelled event must release what its callback captured at cancel()
// time. A shared_ptr captured by a pending timer otherwise pins buffers
// (a whole GoP cache entry, in the worst case) until the zombie's
// timestamp surfaces.
TEST(CancelReleases, SharedPtrDroppedImmediatelyOnCancel) {
  sim::EventLoop loop;
  auto payload = std::make_shared<int>(42);
  std::weak_ptr<int> watch = payload;
  const auto id =
      loop.schedule_after(10 * kSec, [p = std::move(payload)]() { (void)*p; });
  ASSERT_EQ(watch.use_count(), 1);  // callback holds the only reference
  loop.cancel(id);
  // No events ran — the queue's zombie entry must not keep the capture.
  EXPECT_TRUE(watch.expired());
  EXPECT_EQ(loop.dispatched(), 0u);
  loop.run();
  EXPECT_EQ(loop.dispatched(), 0u);
}

struct Probe final : sim::Message {
  inline static int alive = 0;
  Probe() { ++alive; }
  ~Probe() override { --alive; }
  std::size_t wire_size() const override { return 1; }
  std::string describe() const override { return "probe"; }
};

TEST(CancelReleases, IntrusiveMessageDroppedImmediatelyOnCancel) {
  ASSERT_EQ(Probe::alive, 0);
  sim::EventLoop loop;
  sim::MessagePtr msg = sim::make_message<Probe>();
  const auto id = loop.schedule_after(1 * kSec, [m = std::move(msg)]() {});
  ASSERT_EQ(Probe::alive, 1);
  loop.cancel(id);
  EXPECT_EQ(Probe::alive, 0);  // released now, not at t = 1 s
}

}  // namespace
}  // namespace livenet
