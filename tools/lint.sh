#!/usr/bin/env bash
# Runs clang-tidy (profile: .clang-tidy at the repo root) over the
# first-party sources using the compile_commands.json of an existing
# build tree.
#
# Usage: tools/lint.sh [build-dir] [clang-tidy-args...]
#   build-dir defaults to ./build; pass extra args (e.g. -fix or
#   -checks=...) after it.
#
# Degrades gracefully: if clang-tidy is not installed (the CI image
# bakes in the compiler toolchain only), it reports and exits 0 so the
# lint step never masks the test signal.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
shift || true

tidy="$(command -v clang-tidy || true)"
if [[ -z "${tidy}" ]]; then
  echo "lint: clang-tidy not found on PATH; skipping (install clang-tidy to run)" >&2
  exit 0
fi

if [[ ! -f "${build_dir}/compile_commands.json" ]]; then
  echo "lint: ${build_dir}/compile_commands.json missing; configuring" >&2
  cmake -B "${build_dir}" -S "${repo_root}" \
      -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >&2
fi

mapfile -t sources < <(cd "${repo_root}" && find src bench tests examples \
    -name '*.cpp' | sort)

echo "lint: ${#sources[@]} files, profile $(head -1 "${repo_root}/.clang-tidy")" >&2
(cd "${repo_root}" && "${tidy}" -p "${build_dir}" "$@" "${sources[@]}")
