// Command-line experiment runner: drives the calibrated Taobao-Live
// workload against LiveNet or Hier and writes the three paper data
// sources (plus a timeline) as CSV for downstream analysis.
//
//   livenet_run [--system livenet|hier] [--days N] [--seed S]
//               [--replicas N] [--flash] [--chaos] [--fault-seed S]
//               [--csv-dir DIR] [--trace-sample F] [--metrics-out DIR]
//               [--brain-threads N] [--svc-mode off|L1T3|L3T3]
//               [--layer-mask M]
//
// With --csv-dir, writes sessions.csv / views.csv / path_requests.csv /
// timeline.csv into DIR; always prints the Table-1-style summary.
// --chaos layers a seeded random fault schedule (link flaps and
// degradations, node crashes, Brain outages) over the run and reports
// the fault/recovery summary; faults.csv is added to --csv-dir output.
// --trace-sample stamps that fraction of broadcaster packets with a
// trace id for per-hop tracing; --metrics-out writes telemetry.csv
// (hop records, readable by trace_query) and metrics.json (registry
// snapshot) into DIR.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "livenet/csv.h"
#include "livenet/defaults.h"
#include "livenet/report.h"

using namespace livenet;

namespace {

struct Options {
  std::string system = "livenet";
  int days = 3;
  std::uint64_t seed = 42;
  int replicas = 0;
  bool flash = false;
  bool chaos = false;
  std::uint64_t fault_seed = 1;
  std::string csv_dir;
  double trace_sample = 0.0;
  std::string metrics_dir;
  int brain_threads = 1;
  std::string svc_mode = "off";
  std::uint16_t layer_mask = 0xFFFF;
};

bool parse(int argc, char** argv, Options* opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--system") {
      const char* v = next();
      if (v == nullptr) return false;
      opt->system = v;
    } else if (arg == "--days") {
      const char* v = next();
      if (v == nullptr) return false;
      opt->days = std::atoi(v);
    } else if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr) return false;
      opt->seed = static_cast<std::uint64_t>(std::atoll(v));
    } else if (arg == "--replicas") {
      const char* v = next();
      if (v == nullptr) return false;
      opt->replicas = std::atoi(v);
    } else if (arg == "--flash") {
      opt->flash = true;
    } else if (arg == "--chaos") {
      opt->chaos = true;
    } else if (arg == "--fault-seed") {
      const char* v = next();
      if (v == nullptr) return false;
      opt->fault_seed = static_cast<std::uint64_t>(std::atoll(v));
      opt->chaos = true;
    } else if (arg == "--csv-dir") {
      const char* v = next();
      if (v == nullptr) return false;
      opt->csv_dir = v;
    } else if (arg == "--trace-sample") {
      const char* v = next();
      if (v == nullptr) return false;
      opt->trace_sample = std::atof(v);
    } else if (arg == "--metrics-out") {
      const char* v = next();
      if (v == nullptr) return false;
      opt->metrics_dir = v;
    } else if (arg == "--brain-threads") {
      const char* v = next();
      if (v == nullptr) return false;
      opt->brain_threads = std::atoi(v);
    } else if (arg == "--svc-mode") {
      const char* v = next();
      if (v == nullptr) return false;
      opt->svc_mode = v;
    } else if (arg == "--layer-mask") {
      // Initial per-viewer SVC layer mask, hex or decimal (0xFFFF=all).
      const char* v = next();
      if (v == nullptr) return false;
      opt->layer_mask =
          static_cast<std::uint16_t>(std::strtoul(v, nullptr, 0));
    } else if (arg == "--help" || arg == "-h") {
      return false;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    }
  }
  return opt->days > 0 && opt->trace_sample >= 0.0 &&
         opt->trace_sample <= 1.0 && opt->brain_threads > 0 &&
         (opt->system == "livenet" || opt->system == "hier") &&
         (opt->svc_mode == "off" || opt->svc_mode == "L1T3" ||
          opt->svc_mode == "L3T3");
}

void write_file(const std::string& path,
                const std::function<void(std::ostream&)>& writer) {
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  writer(os);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse(argc, argv, &opt)) {
    std::fprintf(stderr,
                 "usage: %s [--system livenet|hier] [--days N] [--seed S]\n"
                 "          [--replicas N] [--flash] [--chaos]\n"
                 "          [--fault-seed S] [--csv-dir DIR]\n"
                 "          [--trace-sample F] [--metrics-out DIR]\n"
                 "          [--brain-threads N] [--svc-mode off|L1T3|L3T3]\n"
                 "          [--layer-mask M]\n",
                 argv[0]);
    return 2;
  }

  SystemConfig sys_cfg = paper_system_config(opt.seed);
  sys_cfg.path_decision_replicas = opt.replicas;
  // Parallel Brain fan-out width; output is byte-identical for every
  // value, so this is purely a wall-clock knob.
  sys_cfg.brain.routing.threads = static_cast<std::size_t>(opt.brain_threads);
  ScenarioConfig scn = paper_scenario_config(opt.seed ^ 0x5C3A);
  scn.duration = opt.days * scn.day_length;
  if (opt.flash) {
    workload::FlashWindow w;
    w.start = (opt.days / 2) * scn.day_length + scn.day_length * 20 / 24;
    w.end = w.start + scn.day_length;
    w.multiplier = 2.5;
    scn.flash.push_back(w);
    scn.flash_capacity_factor = 1.25;
  }
  scn.trace_sample = opt.trace_sample;
  apply_svc_mode(scn, opt.svc_mode);  // validated in parse()
  scn.viewer_layer_mask = opt.layer_mask;
  if (opt.chaos) {
    scn.faults.seed = opt.fault_seed;
    scn.faults.link_flaps_per_min = 0.5;
    scn.faults.degrades_per_min = 0.5;
    scn.faults.node_crashes_per_min = 0.2;
    scn.faults.control_outages_per_min = 0.05;
  }

  std::printf("running %s, %d compressed day(s), seed %llu%s%s...\n",
              opt.system.c_str(), opt.days,
              static_cast<unsigned long long>(opt.seed),
              opt.flash ? ", with flash-sale window" : "",
              opt.chaos ? ", with chaos faults" : "");

  ScenarioResult result = [&] {
    if (opt.system == "hier") {
      HierSystem system(sys_cfg);
      ScenarioRunner runner(system, scn);
      return runner.run();
    }
    LiveNetSystem system(sys_cfg);
    ScenarioRunner runner(system, scn);
    return runner.run();
  }();

  const HeadlineMetrics m = headline_metrics(result);
  std::printf("\nsessions=%zu views=%zu (of %llu viewers)\n", m.sessions,
              m.views, static_cast<unsigned long long>(result.total_viewers));
  std::printf("CDN path delay (median): %.0f ms\n",
              m.cdn_path_delay_ms_median);
  std::printf("CDN path length (median): %.0f\n", m.cdn_path_length_median);
  std::printf("streaming delay (median): %.0f ms\n",
              m.streaming_delay_ms_median);
  std::printf("0-stall ratio: %.1f%%\n", m.zero_stall_percent);
  std::printf("fast startup ratio: %.1f%%\n", m.fast_startup_percent);

  if (opt.chaos) {
    const FaultSummary fs = fault_summary(result);
    std::printf("\nfaults: %zu injected, %zu repaired, %zu recovered\n",
                fs.injected, fs.repaired, fs.recovered);
    for (const auto& [kind, n] : fs.by_kind) {
      std::printf("  %-16s %3zu\n", kind.c_str(), n);
    }
    if (fs.recovered > 0) {
      std::printf("recovery time: mean %.1f ms, max %.1f ms\n",
                  fs.mean_recovery_ms, fs.max_recovery_ms);
    }
  }

  if (!opt.csv_dir.empty()) {
    const std::string dir = opt.csv_dir + "/";
    write_file(dir + "sessions.csv",
               [&](std::ostream& os) { write_sessions_csv(result, os); });
    write_file(dir + "views.csv",
               [&](std::ostream& os) { write_views_csv(result, os); });
    write_file(dir + "path_requests.csv", [&](std::ostream& os) {
      write_path_requests_csv(result, os);
    });
    write_file(dir + "timeline.csv",
               [&](std::ostream& os) { write_timeline_csv(result, os); });
    if (opt.chaos) {
      write_file(dir + "faults.csv",
                 [&](std::ostream& os) { write_faults_csv(result, os); });
    }
  }

  if (!opt.metrics_dir.empty()) {
    const std::string dir = opt.metrics_dir + "/";
    write_file(dir + "telemetry.csv",
               [&](std::ostream& os) { write_telemetry_csv(os); });
    write_file(dir + "metrics.json",
               [&](std::ostream& os) { write_metrics_json(os); });
  }
  return 0;
}
