#!/usr/bin/env bash
# End-to-end telemetry smoke: run a short traced scenario, export
# telemetry.csv + metrics.json, and reconstruct a packet path with
# trace_query. Invoked by ctest as
#   telemetry_smoke.sh <livenet_run> <trace_query>
set -euo pipefail

RUN="$1"
QUERY="$2"
OUT="$(mktemp -d)"
trap 'rm -rf "$OUT"' EXIT

"$RUN" --days 1 --seed 11 --trace-sample 0.05 --metrics-out "$OUT" \
    > "$OUT/run.log"

test -s "$OUT/telemetry.csv" || { echo "FAIL: telemetry.csv missing"; exit 1; }
test -s "$OUT/metrics.json" || { echo "FAIL: metrics.json missing"; exit 1; }

head -1 "$OUT/telemetry.csv" | \
    grep -q '^trace_id,t_us,stream,seq,node,peer,event,reason$' || {
  echo "FAIL: unexpected telemetry.csv header"; exit 1;
}

# The run must actually have traced packets across multiple hop kinds.
SUMMARY="$("$QUERY" "$OUT/telemetry.csv")"
echo "$SUMMARY"
echo "$SUMMARY" | grep -q 'traces' || { echo "FAIL: no summary"; exit 1; }
echo "$SUMMARY" | grep -q 'link_enqueue' || {
  echo "FAIL: no link_enqueue records"; exit 1;
}
echo "$SUMMARY" | grep -q 'ingress' || {
  echo "FAIL: no ingress records"; exit 1;
}

# Path reconstruction: the longest trace must start with an ingress or
# link hop and report an end-to-end latency line.
DEMO="$("$QUERY" "$OUT/telemetry.csv" --demo)"
echo "$DEMO"
echo "$DEMO" | grep -q 'end-to-end:' || {
  echo "FAIL: demo path has no end-to-end line"; exit 1;
}

# metrics.json must carry the registry sections and nonzero counters.
grep -q '"counters"' "$OUT/metrics.json" || {
  echo "FAIL: metrics.json missing counters"; exit 1;
}
grep -q '"telemetry.traced_packets"' "$OUT/metrics.json" || {
  echo "FAIL: metrics.json missing traced_packets"; exit 1;
}
grep -q '"gauges"' "$OUT/metrics.json" || {
  echo "FAIL: metrics.json missing gauges"; exit 1;
}

echo "telemetry smoke OK"
