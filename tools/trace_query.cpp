// Offline query tool for the per-hop trace records a run exports via
// `livenet_run --trace-sample F --metrics-out DIR` (telemetry.csv).
//
//   trace_query FILE              summary: records, traces, event mix
//   trace_query FILE --list       one line per trace (hops, span, fate)
//   trace_query FILE --trace N    full path of trace N with per-hop
//                                 latency breakdown
//   trace_query FILE --demo      path of the longest trace (exit 1 if
//                                 the file holds no records)
//   trace_query FILE --metrics [PREFIX]
//                                 FILE is a metrics.json; prints every
//                                 counter/gauge/latency whose name
//                                 starts with PREFIX (default "brain."
//                                 — the routing-cycle phase breakdown:
//                                 graph build / solve / install, plus
//                                 the brain.threads fan-out gauge)
//
// Records are sorted by timestamp before reconstruction: the exporter
// writes link_dequeue rows pre-dated with the arrival time at the
// moment of the send, so file order is not event order.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct Row {
  std::uint64_t trace_id = 0;
  long long t_us = 0;
  std::uint64_t stream = 0;
  std::uint64_t seq = 0;
  int node = -1;
  int peer = -1;
  std::string event;
  std::string reason;
};

bool parse_row(const std::string& line, Row* r) {
  std::istringstream ss(line);
  std::string f[8];
  for (int i = 0; i < 8; ++i) {
    if (!std::getline(ss, f[i], ',')) return false;
  }
  r->trace_id = std::strtoull(f[0].c_str(), nullptr, 10);
  r->t_us = std::atoll(f[1].c_str());
  r->stream = std::strtoull(f[2].c_str(), nullptr, 10);
  r->seq = std::strtoull(f[3].c_str(), nullptr, 10);
  r->node = std::atoi(f[4].c_str());
  r->peer = std::atoi(f[5].c_str());
  r->event = f[6];
  r->reason = f[7];
  return r->trace_id != 0;
}

std::vector<Row> load(const std::string& path, bool* ok) {
  std::vector<Row> rows;
  std::ifstream is(path);
  *ok = static_cast<bool>(is);
  if (!*ok) return rows;
  std::string line;
  std::getline(is, line);  // header
  while (std::getline(is, line)) {
    Row r;
    if (parse_row(line, &r)) rows.push_back(std::move(r));
  }
  std::stable_sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return a.trace_id != b.trace_id ? a.trace_id < b.trace_id
                                    : a.t_us < b.t_us;
  });
  return rows;
}

/// Contiguous slice of one trace inside the sorted row list.
struct Trace {
  std::uint64_t id = 0;
  const Row* begin = nullptr;
  const Row* end = nullptr;
  std::size_t hops() const { return static_cast<std::size_t>(end - begin); }
  const Row* find_drop() const {
    for (const Row* r = begin; r != end; ++r) {
      if (r->event == "drop") return r;
    }
    return nullptr;
  }
};

std::vector<Trace> group(const std::vector<Row>& rows) {
  std::vector<Trace> out;
  for (std::size_t i = 0; i < rows.size();) {
    std::size_t j = i;
    while (j < rows.size() && rows[j].trace_id == rows[i].trace_id) ++j;
    out.push_back(Trace{rows[i].trace_id, &rows[i], &rows[j]});
    i = j;
  }
  return out;
}

void print_path(const Trace& t) {
  std::printf("trace %llu  stream %llu seq %llu  (%zu hops)\n",
              static_cast<unsigned long long>(t.id),
              static_cast<unsigned long long>(t.begin->stream),
              static_cast<unsigned long long>(t.begin->seq), t.hops());
  long long prev = t.begin->t_us;
  for (const Row* r = t.begin; r != t.end; ++r) {
    std::printf("  t=%-10lld +%-8.3fms  %-14s node %-4d", r->t_us,
                static_cast<double>(r->t_us - prev) / 1000.0,
                r->event.c_str(), r->node);
    if (r->peer >= 0) std::printf(" -> %-4d", r->peer);
    if (r->reason != "none") std::printf("  [%s]", r->reason.c_str());
    std::printf("\n");
    prev = r->t_us;
  }
  const Row* drop = t.find_drop();
  std::printf("  end-to-end: %.3f ms, %s\n",
              static_cast<double>((t.end - 1)->t_us - t.begin->t_us) / 1000.0,
              drop != nullptr ? ("dropped: " + drop->reason).c_str()
                              : "delivered");
}

/// metrics.json reader. The exporter writes one metric per line
/// (`    "name": value` / `    "name": {summary}`) under three section
/// keys, so a line scanner is a complete parser for this format —
/// no JSON library in the image, none needed.
int show_metrics(const std::string& path, const std::string& prefix) {
  std::ifstream is(path);
  if (!is) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return 2;
  }
  std::string line, section;
  std::size_t shown = 0;
  while (std::getline(is, line)) {
    const std::size_t q1 = line.find('"');
    if (q1 == std::string::npos) continue;
    const std::size_t q2 = line.find('"', q1 + 1);
    if (q2 == std::string::npos) continue;
    const std::string name = line.substr(q1 + 1, q2 - q1 - 1);
    if (name == "counters" || name == "gauges" || name == "latencies") {
      section = name;
      continue;
    }
    if (name.compare(0, prefix.size(), prefix) != 0) continue;
    std::size_t v = line.find(':', q2);
    if (v == std::string::npos) continue;
    ++v;
    while (v < line.size() && line[v] == ' ') ++v;
    std::string value = line.substr(v);
    while (!value.empty() && (value.back() == ',' || value.back() == ' ')) {
      value.pop_back();
    }
    std::printf("%-10s %-36s %s\n", section.c_str(), name.c_str(),
                value.c_str());
    ++shown;
  }
  if (shown == 0) {
    std::fprintf(stderr, "no metrics matching \"%s*\" in %s\n",
                 prefix.c_str(), path.c_str());
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string file, mode = "summary", metrics_prefix = "brain.";
  std::uint64_t want_id = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list" || arg == "--demo") {
      mode = arg.substr(2);
    } else if (arg == "--trace" && i + 1 < argc) {
      mode = "trace";
      want_id = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--metrics") {
      mode = "metrics";
      if (i + 1 < argc && argv[i + 1][0] != '-') metrics_prefix = argv[++i];
    } else if (file.empty() && arg[0] != '-') {
      file = arg;
    } else {
      std::fprintf(stderr,
                   "usage: %s FILE [--list | --trace N | --demo |"
                   " --metrics [PREFIX]]\n",
                   argv[0]);
      return 2;
    }
  }
  if (file.empty()) {
    std::fprintf(stderr,
                 "usage: %s FILE [--list | --trace N | --demo |"
                 " --metrics [PREFIX]]\n",
                 argv[0]);
    return 2;
  }
  if (mode == "metrics") return show_metrics(file, metrics_prefix);

  bool ok = false;
  const std::vector<Row> rows = load(file, &ok);
  if (!ok) {
    std::fprintf(stderr, "cannot read %s\n", file.c_str());
    return 2;
  }
  const std::vector<Trace> traces = group(rows);

  if (mode == "summary") {
    std::map<std::string, std::size_t> events;
    std::size_t dropped = 0;
    for (const Row& r : rows) ++events[r.event];
    for (const Trace& t : traces) {
      if (t.find_drop() != nullptr) ++dropped;
    }
    std::printf("%zu records, %zu traces (%zu with a drop)\n", rows.size(),
                traces.size(), dropped);
    for (const auto& [ev, n] : events) {
      std::printf("  %-14s %8zu\n", ev.c_str(), n);
    }
    return 0;
  }
  if (mode == "list") {
    for (const Trace& t : traces) {
      const Row* drop = t.find_drop();
      std::printf("trace %-8llu stream %-4llu seq %-8llu %3zu hops  "
                  "%9.3f ms  %s\n",
                  static_cast<unsigned long long>(t.id),
                  static_cast<unsigned long long>(t.begin->stream),
                  static_cast<unsigned long long>(t.begin->seq), t.hops(),
                  static_cast<double>((t.end - 1)->t_us - t.begin->t_us) /
                      1000.0,
                  drop != nullptr ? drop->reason.c_str() : "delivered");
    }
    return 0;
  }
  if (mode == "trace") {
    for (const Trace& t : traces) {
      if (t.id == want_id) {
        print_path(t);
        return 0;
      }
    }
    std::fprintf(stderr, "trace %llu not found\n",
                 static_cast<unsigned long long>(want_id));
    return 1;
  }
  // --demo: the longest path in the file.
  const Trace* best = nullptr;
  for (const Trace& t : traces) {
    if (best == nullptr || t.hops() > best->hops()) best = &t;
  }
  if (best == nullptr) {
    std::fprintf(stderr, "no trace records in %s\n", file.c_str());
    return 1;
  }
  print_path(*best);
  return 0;
}
